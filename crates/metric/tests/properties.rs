//! Property-based tests for the metric substrate.

use kcenter_metric::pairwise::{all_pairwise_distances, diameter_bounds, min_positive_distance};
use kcenter_metric::selection::{kth_largest, kth_smallest, radius_excluding_outliers};
use kcenter_metric::{
    minimum_enclosing_ball, Chebyshev, CosineAngular, DistanceMatrix, Euclidean, Manhattan, Metric,
    Point,
};
use proptest::prelude::*;

fn arb_point(dim: usize) -> impl Strategy<Value = Point> {
    prop::collection::vec(-1e3..1e3f64, dim).prop_map(Point::new)
}

fn arb_points(dim: usize, max_n: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(arb_point(dim), 1..max_n)
}

/// Checks the four metric axioms on a triple of points.
fn assert_metric_axioms<M: Metric<Point>>(
    metric: &M,
    a: &Point,
    b: &Point,
    c: &Point,
) -> Result<(), TestCaseError> {
    let dab = metric.distance(a, b);
    let dba = metric.distance(b, a);
    let dac = metric.distance(a, c);
    let dcb = metric.distance(c, b);
    // Tolerances sized for acos-amplified rounding (acos(1-1e-16) ~ 1.5e-8).
    prop_assert!(dab >= 0.0, "non-negativity violated: {dab}");
    prop_assert!(metric.distance(a, a) <= 1e-7, "identity violated");
    prop_assert!((dab - dba).abs() <= 1e-7 * (1.0 + dab), "symmetry violated");
    prop_assert!(
        dab <= dac + dcb + 1e-7 * (1.0 + dab),
        "triangle inequality violated: d(a,b)={dab} > {dac} + {dcb}"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn euclidean_is_a_metric(
        a in arb_point(4), b in arb_point(4), c in arb_point(4)
    ) {
        assert_metric_axioms(&Euclidean, &a, &b, &c)?;
    }

    #[test]
    fn manhattan_is_a_metric(
        a in arb_point(4), b in arb_point(4), c in arb_point(4)
    ) {
        assert_metric_axioms(&Manhattan, &a, &b, &c)?;
    }

    #[test]
    fn chebyshev_is_a_metric(
        a in arb_point(4), b in arb_point(4), c in arb_point(4)
    ) {
        assert_metric_axioms(&Chebyshev, &a, &b, &c)?;
    }

    #[test]
    fn cosine_angular_is_a_metric_on_nonzero_vectors(
        a in prop::collection::vec(0.1..1e3f64, 3).prop_map(Point::new),
        b in prop::collection::vec(0.1..1e3f64, 3).prop_map(Point::new),
        c in prop::collection::vec(0.1..1e3f64, 3).prop_map(Point::new),
    ) {
        // Restricted to the positive orthant, away from zero, where the
        // angular distance is well conditioned.
        assert_metric_axioms(&CosineAngular, &a, &b, &c)?;
    }

    #[test]
    fn metric_orderings_agree_on_norm_chain(
        a in arb_point(4), b in arb_point(4)
    ) {
        // Standard norm chain: L-inf <= L2 <= L1.
        let linf = Chebyshev.distance(&a, &b);
        let l2 = Euclidean.distance(&a, &b);
        let l1 = Manhattan.distance(&a, &b);
        prop_assert!(linf <= l2 + 1e-9 * (1.0 + l2));
        prop_assert!(l2 <= l1 + 1e-9 * (1.0 + l1));
    }

    #[test]
    fn meb_contains_all_points(points in arb_points(3, 40)) {
        let ball = minimum_enclosing_ball(&points, 0.1);
        for p in &points {
            prop_assert!(ball.contains(p, 1e-6));
        }
    }

    #[test]
    fn meb_radius_at_most_diameter(points in arb_points(3, 40)) {
        // Any enclosing ball found by the iteration has radius <= the
        // diameter (it is centered inside the convex hull after step 1).
        let ball = minimum_enclosing_ball(&points, 0.1);
        let (_, hi) = diameter_bounds(&points, &Euclidean);
        prop_assert!(ball.radius <= hi + 1e-9);
    }

    #[test]
    fn selection_matches_sorting(
        mut values in prop::collection::vec(-1e6..1e6f64, 1..64),
        k_frac in 0.0..1.0f64,
    ) {
        let k = ((values.len() - 1) as f64 * k_frac) as usize;
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        prop_assert_eq!(kth_smallest(&mut values.clone(), k), sorted[k]);
        prop_assert_eq!(kth_largest(&mut values, k), sorted[sorted.len() - 1 - k]);
    }

    #[test]
    fn radius_excluding_outliers_matches_sorting(
        values in prop::collection::vec(0.0..1e6f64, 1..64),
        z in 0usize..70,
    ) {
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let expected = if z >= values.len() {
            0.0
        } else {
            sorted[values.len() - 1 - z]
        };
        prop_assert_eq!(radius_excluding_outliers(&mut values.clone(), z), expected);
    }

    #[test]
    fn distance_matrix_agrees_with_direct_computation(points in arb_points(2, 24)) {
        let m = DistanceMatrix::build(&points, &Euclidean);
        for i in 0..points.len() {
            for j in 0..points.len() {
                let expect = Euclidean.distance(&points[i], &points[j]);
                prop_assert!((m.get(i, j) - expect).abs() < 1e-12);
            }
        }
        let mut condensed: Vec<f64> = m.condensed().to_vec();
        condensed.sort_by(f64::total_cmp);
        let mut direct = all_pairwise_distances(&points, &Euclidean);
        direct.sort_by(f64::total_cmp);
        prop_assert_eq!(condensed, direct);
    }

    #[test]
    fn min_positive_distance_is_a_lower_bound(points in arb_points(2, 24)) {
        if let Some(min_d) = min_positive_distance(&points, &Euclidean) {
            prop_assert!(min_d > 0.0);
            for d in all_pairwise_distances(&points, &Euclidean) {
                prop_assert!(d == 0.0 || d >= min_d - 1e-12);
            }
        }
    }

    #[test]
    fn diameter_bounds_hold(points in arb_points(2, 24)) {
        let (lo, hi) = diameter_bounds(&points, &Euclidean);
        let true_diam = all_pairwise_distances(&points, &Euclidean)
            .into_iter()
            .fold(0.0, f64::max);
        prop_assert!(lo <= true_diam + 1e-9);
        prop_assert!(hi >= true_diam - 1e-9);
    }
}
