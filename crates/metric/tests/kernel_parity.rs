//! Bitwise parity between the batched block kernels and the scalar
//! point-at-a-time paths — the contract every hot loop in the workspace
//! (GMM scans, matrix builds, ball-weight passes, the streaming doubling
//! scan) relies on when it swaps `cmp_distance` for `cmp_distance_block`.
//!
//! Each property drives the *dispatched* kernels (whatever ISA the host
//! auto-detects — AVX, SSE2, or scalar) against the trait-default scalar
//! loops, over both owned `Point` slices and zero-copy `PointSet` views,
//! and demands equality of raw bit patterns, not approximate agreement.
//! Inputs deliberately include `-0.0`, subnormals, duplicate-heavy sets,
//! and block lengths that are not a multiple of any SIMD width (remainder
//! lanes).

use kcenter_metric::kernels::{self, KernelMetric};
use kcenter_metric::{
    Chebyshev, CosineAngular, Euclidean, Manhattan, Metric, Point, PointRef, PointSet,
};
use proptest::prelude::*;

/// Bit-pattern-sensitive coordinates: signed zero, subnormals, values at
/// the magnitude extremes of the generation range.
const SPECIALS: [f64; 8] = [
    -0.0,
    0.0,
    1e-300,
    -1e-300,
    f64::MIN_POSITIVE / 2.0, // subnormal
    -f64::MIN_POSITIVE / 2.0,
    1e3,
    -7.25,
];

fn arb_coord() -> impl Strategy<Value = f64> {
    // Half uniform draws, half special values.
    (0usize..16, -1e3..1e3f64).prop_map(|(i, x)| if i < 8 { x } else { SPECIALS[i - 8] })
}

/// `1 + n` points (a query plus a block) of the given dimension.
fn arb_points(dim: usize, max_n: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        prop::collection::vec(arb_coord(), dim).prop_map(Point::new),
        2..max_n,
    )
}

/// Duplicate-heavy sets: a handful of base points fanned out by an index
/// stream, so ties (`cmp == 0.0` between distinct slots) are the norm.
fn arb_duplicate_heavy(dim: usize) -> impl Strategy<Value = Vec<Point>> {
    (arb_points(dim, 6), prop::collection::vec(0usize..16, 4..40)).prop_map(|(base, idx)| {
        idx.into_iter()
            .map(|i| base[i % base.len()].clone())
            .collect()
    })
}

/// The parity oracle: `points[0]` is the query, the rest the block.
///
/// Checks all three block methods against the scalar trait defaults, on
/// owned `Point`s and on `PointRef` views of a `PointSet` built from the
/// same coordinates — six comparisons, all bitwise.
fn check_parity<M>(metric: &M, points: &[Point]) -> Result<(), TestCaseError>
where
    M: for<'a> Metric<PointRef<'a>> + Metric<Point>,
{
    let query = &points[0];
    let block = &points[1..];
    let n = block.len();

    // Scalar reference: the point-at-a-time methods the defaults loop.
    let mut cmp_ref = vec![0.0f64; n];
    let mut dist_ref = vec![0.0f64; n];
    for (j, b) in block.iter().enumerate() {
        cmp_ref[j] = Metric::<Point>::cmp_distance(metric, query, b);
        dist_ref[j] = Metric::<Point>::distance(metric, query, b);
    }

    // Dispatched block kernels over the owned slice.
    let mut cmp_blk = vec![0.0f64; n];
    metric.cmp_distance_block(query, block, &mut cmp_blk);
    let mut dist_blk = vec![0.0f64; n];
    metric.distance_to_block(query, block, &mut dist_blk);
    for j in 0..n {
        prop_assert_eq!(cmp_blk[j].to_bits(), cmp_ref[j].to_bits());
        prop_assert_eq!(dist_blk[j].to_bits(), dist_ref[j].to_bits());
    }

    // The same kernels over zero-copy views of the SoA set.
    let set = PointSet::from_points(points);
    let q = set.get(0);
    let refs: Vec<PointRef<'_>> = set.iter().skip(1).collect();
    let mut cmp_set = vec![0.0f64; n];
    metric.cmp_distance_block(&q, &refs, &mut cmp_set);
    let mut dist_set = vec![0.0f64; n];
    metric.distance_to_block(&q, &refs, &mut dist_set);
    for j in 0..n {
        prop_assert_eq!(cmp_set[j].to_bits(), cmp_ref[j].to_bits());
        prop_assert_eq!(dist_set[j].to_bits(), dist_ref[j].to_bits());
    }

    // Ball membership at thresholds sitting exactly ON proxy values (the
    // boundary case a sloppy kernel gets wrong) plus the extremes.
    let mut thresholds: Vec<f64> = cmp_ref.iter().copied().take(4).collect();
    thresholds.push(0.0);
    thresholds.push(cmp_ref.iter().copied().fold(0.0, f64::max));
    for t in thresholds {
        let mut flags = vec![false; n];
        metric.within_block(query, block, t, &mut flags);
        let mut flags_set = vec![false; n];
        metric.within_block(&q, &refs, t, &mut flags_set);
        for j in 0..n {
            let expect = cmp_ref[j] <= t;
            prop_assert_eq!(flags[j], expect);
            prop_assert_eq!(flags_set[j], expect);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn euclidean_block_kernels_match_scalar(points in arb_points(3, 24)) {
        check_parity(&Euclidean, &points)?;
    }

    #[test]
    fn manhattan_block_kernels_match_scalar(points in arb_points(2, 24)) {
        check_parity(&Manhattan, &points)?;
    }

    #[test]
    fn chebyshev_block_kernels_match_scalar(points in arb_points(5, 20)) {
        check_parity(&Chebyshev, &points)?;
    }

    #[test]
    fn cosine_angular_block_kernels_match_scalar(points in arb_points(3, 24)) {
        // The dispatched three-accumulator cosine kernels (SSE2/AVX lane-
        // per-point, scalar query self-dot, scalar per-lane acos epilogue)
        // against the scalar trait path — including zero vectors, signed
        // zeros, and subnormals from the shared special palette, which
        // exercise the per-lane boundary epilogue.
        check_parity(&CosineAngular, &points)?;
    }

    #[test]
    fn cosine_angular_zero_and_duplicate_vectors_stay_bit_identical(
        points in arb_duplicate_heavy(3),
    ) {
        check_parity(&CosineAngular, &points)?;
    }

    #[test]
    fn duplicate_heavy_sets_stay_bit_identical(points in arb_duplicate_heavy(3)) {
        check_parity(&Euclidean, &points)?;
        check_parity(&Manhattan, &points)?;
        check_parity(&Chebyshev, &points)?;
    }

    #[test]
    fn single_point_blocks_and_dimension_one(points in arb_points(1, 4)) {
        // The degenerate shapes: dim-1 points, blocks of length 1-2 (all
        // remainder, no full SIMD chunk).
        check_parity(&Euclidean, &points)?;
        check_parity(&Chebyshev, &points)?;
    }
}

/// Remainder lanes, pinned deterministically: every block length 1..=9
/// crosses the AVX width (4), the SSE2 width (2), and their remainders.
#[test]
fn every_remainder_lane_is_bitwise_identical() {
    let palette = [
        0.25, -0.0, 1e-300, 739.5, -1e3, 0.1, -0.125, 64.0, 5e-324, 2.5,
    ];
    for dim in [1usize, 2, 3, 7] {
        for n in 1usize..=9 {
            let points: Vec<Point> = (0..n + 1)
                .map(|i| {
                    Point::new(
                        (0..dim)
                            .map(|d| palette[(i * dim + d) % palette.len()])
                            .collect(),
                    )
                })
                .collect();
            let query = points[0].coords();
            let block = &points[1..];
            for kind in [
                KernelMetric::Euclidean,
                KernelMetric::Manhattan,
                KernelMetric::Chebyshev,
            ] {
                let mut dispatched = vec![0.0f64; n];
                kernels::cmp_block(kind, query, block, &mut dispatched);
                let mut scalar = vec![0.0f64; n];
                kernels::cmp_block_scalar(kind, query, block, &mut scalar);
                for j in 0..n {
                    assert_eq!(
                        dispatched[j].to_bits(),
                        scalar[j].to_bits(),
                        "{kind:?} dim={dim} n={n} lane {j}: {} vs {}",
                        dispatched[j],
                        scalar[j]
                    );
                }
            }
            // Cosine has its own entry points (not a `KernelMetric`), so
            // its remainder lanes are pinned here explicitly.
            let mut dispatched = vec![0.0f64; n];
            kernels::cosine_block(query, block, &mut dispatched);
            let mut scalar = vec![0.0f64; n];
            kernels::cosine_block_scalar(query, block, &mut scalar);
            for j in 0..n {
                assert_eq!(
                    dispatched[j].to_bits(),
                    scalar[j].to_bits(),
                    "cosine dim={dim} n={n} lane {j}: {} vs {}",
                    dispatched[j],
                    scalar[j]
                );
            }
        }
    }
}

/// A `PointSet` loaded by copy and the original owned points are fully
/// interchangeable inputs to the kernels — the guarantee that lets the
/// exec worker swap `Vec<Point>` for mapped shard views.
#[test]
fn pointset_views_are_interchangeable_with_owned_points() {
    let points: Vec<Point> = (0..13)
        .map(|i| Point::new(vec![i as f64 * 0.3, -0.0, 1e-300 * (i + 1) as f64]))
        .collect();
    let set = PointSet::from_points(&points);
    let refs: Vec<PointRef<'_>> = set.iter().collect();
    let mut from_points = vec![0.0f64; points.len() - 1];
    Euclidean.cmp_distance_block(&points[0], &points[1..], &mut from_points);
    let mut from_refs = vec![0.0f64; points.len() - 1];
    Euclidean.cmp_distance_block(&refs[0], &refs[1..], &mut from_refs);
    for (a, b) in from_refs.iter().zip(&from_points) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
