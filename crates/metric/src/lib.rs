#![warn(missing_docs)]
//! Metric-space substrate for coreset-based k-center clustering.
//!
//! This crate provides the geometric foundations every algorithm in the
//! workspace builds on:
//!
//! * [`Point`] — a validated, fixed-dimension point with `f64` coordinates;
//! * [`PointSet`] / [`PointRef`] / [`Coordinates`] — structure-of-arrays
//!   point storage (one contiguous coordinate block, zero-copy viewable
//!   from a mmap'd shard) feeding the runtime-dispatched SIMD block
//!   distance kernels in [`kernels`];
//! * the [`Metric`] trait and concrete metrics ([`Euclidean`], [`Manhattan`],
//!   [`Chebyshev`], [`CosineAngular`], and the test-oriented [`Precomputed`]
//!   matrix metric);
//! * [`meb`] — an approximate Minimum Enclosing Ball (Badoiu–Clarkson), used
//!   by the experiment suite to inject outliers exactly the way the paper
//!   does (points at `100 · r_MEB` from the MEB center);
//! * [`selection`] — order-statistic selection used to evaluate the k-center
//!   objective with outliers (the `(z+1)`-th largest distance) in `O(n)`;
//! * [`pairwise`] — parallel pairwise-distance utilities (minimum positive
//!   distance, diameter bounds, condensed distance matrices) that back the
//!   radius searches of the clustering algorithms;
//! * [`doubling`] — an empirical doubling-dimension estimator, the parameter
//!   `D` that governs the coreset sizes in the paper's analysis;
//! * [`fingerprint`] / [`persist`] — deterministic content fingerprints and
//!   the process-wide persistence hook that lets `kcenter-store` serve
//!   previously priced [`DistanceMatrix`] caches across *runs* (keyed by
//!   [`Metric::cache_fingerprint`], accounted by [`store_hit_count`] /
//!   [`store_miss_count`] next to [`matrix_build_count`]).
//!
//! All algorithms in `kcenter-core` are generic over `(P, M: Metric<P>)`, so
//! they run unchanged on Euclidean points, on cosine-space embeddings, or on
//! tiny adversarial metrics given as explicit distance matrices.

pub mod distance;
pub mod doubling;
pub mod fingerprint;
pub mod kernels;
pub mod meb;
pub mod pairwise;
pub mod persist;
pub mod point;
pub mod pointset;
pub mod selection;

pub use distance::{Chebyshev, CosineAngular, Euclidean, Manhattan, Metric, Precomputed};
pub use fingerprint::Fingerprint;
pub use meb::{minimum_enclosing_ball, Ball};
pub use pairwise::{matrix_build_count, CachedOracle, DistanceMatrix, StableF64s};
pub use persist::{
    install_matrix_persistence, matrix_persistence_installed, store_hit_count, store_miss_count,
    MatrixPersistence,
};
pub use point::{Point, PointError};
pub use pointset::{Coordinates, PointRef, PointSet, PointSetError};
