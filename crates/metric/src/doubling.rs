//! Empirical doubling-dimension estimation.
//!
//! The doubling dimension `D` of a metric space is the smallest value such
//! that every ball of radius `r` can be covered by `2^D` balls of radius
//! `r/2`. The paper's coreset sizes scale with `(c/ε)^D`, and a key selling
//! point of the MapReduce algorithms is that they are *oblivious* to `D` —
//! it appears only in the analysis. This module provides a diagnostic
//! estimator so users can anticipate coreset growth on their own data.
//!
//! The estimator lower-bounds `D` by the growth-ratio method: for sampled
//! anchor points `u` and a ladder of radii `r`, it measures
//! `|B(u, r)| / |B(u, r/2)|`; the base-2 logarithm of the largest observed
//! ratio is a proxy for the doubling dimension of the point set. It is a
//! heuristic (exact doubling dimension is NP-hard to compute) but tracks the
//! intrinsic dimension well on synthetic data of known dimension.

use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::distance::Metric;
use crate::pairwise::diameter_bounds;

/// Configuration for [`estimate_doubling_dimension`].
#[derive(Clone, Copy, Debug)]
pub struct DoublingConfig {
    /// Number of anchor points sampled.
    pub anchors: usize,
    /// Number of radius scales per anchor (halving each step from the
    /// diameter down).
    pub scales: usize,
    /// RNG seed for anchor sampling.
    pub seed: u64,
}

impl Default for DoublingConfig {
    fn default() -> Self {
        DoublingConfig {
            anchors: 16,
            scales: 8,
            seed: 0x5eed,
        }
    }
}

/// Estimates the doubling dimension of `points` under `metric`.
///
/// Returns `0.0` for datasets with fewer than two distinct points.
pub fn estimate_doubling_dimension<P: Sync, M: Metric<P>>(
    points: &[P],
    metric: &M,
    config: DoublingConfig,
) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let (_, diameter_hi) = diameter_bounds(points, metric);
    if diameter_hi == 0.0 {
        return 0.0;
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let anchor_count = config.anchors.min(points.len());
    let anchors: Vec<usize> = sample(&mut rng, points.len(), anchor_count).into_vec();

    let max_ratio = anchors
        .par_iter()
        .map(|&a| {
            // Proxy distances from this anchor, reused across all scales;
            // the radius ladder maps onto the proxy scale per rung.
            let dists: Vec<f64> = points
                .iter()
                .map(|p| metric.cmp_distance(&points[a], p))
                .collect();
            let mut anchor_best: f64 = 1.0;
            let mut r = diameter_hi;
            for _ in 0..config.scales {
                let outer_r = metric.distance_to_cmp(r);
                let inner_r = metric.distance_to_cmp(r / 2.0);
                let outer = dists.iter().filter(|&&d| d <= outer_r).count();
                let inner = dists.iter().filter(|&&d| d <= inner_r).count();
                // `inner >= 1` always holds (the anchor itself).
                if outer > 1 {
                    anchor_best = anchor_best.max(outer as f64 / inner as f64);
                }
                r /= 2.0;
            }
            anchor_best
        })
        .reduce(|| 1.0, f64::max);

    max_ratio.log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Euclidean;
    use crate::point::Point;
    use rand::Rng;

    fn uniform_cube(n: usize, dim: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new((0..dim).map(|_| rng.random::<f64>()).collect()))
            .collect()
    }

    #[test]
    fn collinear_points_have_low_dimension() {
        // Collinear points in R^2: intrinsic dimension 1, as in the paper's
        // example of dataset doubling dimension below the ambient space's.
        let pts: Vec<Point> = (0..512)
            .map(|i| Point::new(vec![i as f64, 2.0 * i as f64]))
            .collect();
        let d = estimate_doubling_dimension(&pts, &Euclidean, DoublingConfig::default());
        assert!(d <= 2.0, "estimated D = {d} too high for a line");
        assert!(d >= 0.5, "estimated D = {d} too low for a line");
    }

    #[test]
    fn higher_dimensional_data_scores_higher() {
        let line = uniform_cube(600, 1, 7);
        let cube = uniform_cube(600, 6, 7);
        let d_line = estimate_doubling_dimension(&line, &Euclidean, DoublingConfig::default());
        let d_cube = estimate_doubling_dimension(&cube, &Euclidean, DoublingConfig::default());
        assert!(
            d_cube > d_line,
            "expected cube ({d_cube}) > line ({d_line})"
        );
    }

    #[test]
    fn degenerate_inputs_yield_zero() {
        let single = vec![Point::new(vec![1.0])];
        assert_eq!(
            estimate_doubling_dimension(&single, &Euclidean, DoublingConfig::default()),
            0.0
        );
        let dupes = vec![Point::new(vec![1.0]); 5];
        assert_eq!(
            estimate_doubling_dimension(&dupes, &Euclidean, DoublingConfig::default()),
            0.0
        );
    }
}
