//! A validated point in `R^d`.
//!
//! Every coordinate is required to be finite at construction time so that the
//! distance kernels never have to re-check for `NaN`/`inf` in their hot loops
//! and order comparisons on distances are total.

use std::fmt;
use std::ops::Index;

/// Error returned when constructing a [`Point`] from invalid data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointError {
    /// A coordinate was `NaN` or infinite.
    NonFinite {
        /// Index of the offending coordinate.
        index: usize,
    },
    /// The coordinate vector was empty.
    Empty,
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointError::NonFinite { index } => {
                write!(f, "coordinate {index} is not finite")
            }
            PointError::Empty => write!(f, "points must have at least one coordinate"),
        }
    }
}

impl std::error::Error for PointError {}

/// A point in `R^d` with finite `f64` coordinates.
///
/// Coordinates are stored in a boxed slice (two words instead of `Vec`'s
/// three, and no spare capacity) because datasets hold millions of points.
#[derive(Clone, PartialEq)]
pub struct Point {
    coords: Box<[f64]>,
}

impl Point {
    /// Creates a point, validating that every coordinate is finite.
    ///
    /// # Errors
    ///
    /// Returns [`PointError::Empty`] for zero-dimensional input and
    /// [`PointError::NonFinite`] if any coordinate is `NaN` or infinite.
    pub fn try_new(coords: Vec<f64>) -> Result<Self, PointError> {
        if coords.is_empty() {
            return Err(PointError::Empty);
        }
        if let Some(index) = coords.iter().position(|c| !c.is_finite()) {
            return Err(PointError::NonFinite { index });
        }
        Ok(Point {
            coords: coords.into_boxed_slice(),
        })
    }

    /// Creates a point.
    ///
    /// # Panics
    ///
    /// Panics if the input is empty or contains a non-finite coordinate; use
    /// [`Point::try_new`] to handle untrusted input.
    pub fn new(coords: Vec<f64>) -> Self {
        Self::try_new(coords).expect("invalid point")
    }

    /// The dimension `d` of the point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// The coordinates as a slice.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Squared Euclidean norm of the point.
    #[inline]
    pub fn norm_squared(&self) -> f64 {
        self.coords.iter().map(|c| c * c).sum()
    }

    /// Euclidean norm of the point.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm_squared().sqrt()
    }

    /// The origin of `R^d`.
    pub fn origin(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Point {
            coords: vec![0.0; dim].into_boxed_slice(),
        }
    }
}

impl Index<usize> for Point {
    type Output = f64;

    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

impl From<Vec<f64>> for Point {
    fn from(coords: Vec<f64>) -> Self {
        Point::new(coords)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.coords.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs_valid_point() {
        let p = Point::new(vec![1.0, -2.5, 3.25]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p[1], -2.5);
        assert_eq!(p.coords(), &[1.0, -2.5, 3.25]);
    }

    #[test]
    fn rejects_nan() {
        let err = Point::try_new(vec![0.0, f64::NAN]).unwrap_err();
        assert_eq!(err, PointError::NonFinite { index: 1 });
    }

    #[test]
    fn rejects_infinity() {
        let err = Point::try_new(vec![f64::INFINITY]).unwrap_err();
        assert_eq!(err, PointError::NonFinite { index: 0 });
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Point::try_new(vec![]).unwrap_err(), PointError::Empty);
    }

    #[test]
    #[should_panic(expected = "invalid point")]
    fn new_panics_on_nan() {
        let _ = Point::new(vec![f64::NAN]);
    }

    #[test]
    fn norms() {
        let p = Point::new(vec![3.0, 4.0]);
        assert_eq!(p.norm_squared(), 25.0);
        assert_eq!(p.norm(), 5.0);
    }

    #[test]
    fn origin_is_zero() {
        let o = Point::origin(4);
        assert_eq!(o.dim(), 4);
        assert!(o.coords().iter().all(|&c| c == 0.0));
        assert_eq!(o.norm(), 0.0);
    }

    #[test]
    fn from_vec_roundtrip() {
        let p: Point = vec![1.0, 2.0].into();
        assert_eq!(p.coords(), &[1.0, 2.0]);
    }

    #[test]
    fn debug_format_lists_coords() {
        let p = Point::new(vec![1.0, 2.0]);
        assert_eq!(format!("{p:?}"), "[1.0, 2.0]");
    }
}
