//! Parallel pairwise-distance utilities.
//!
//! The radius searches of the outlier algorithms need (a) bounds on the range
//! of meaningful radii — derived here from the minimum positive pairwise
//! distance and a 2-approximate diameter — and (b), for the exact-candidates
//! search mode on small coresets, the full multiset of pairwise distances.
//! The quadratic scans are rayon-parallel over rows.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use rayon::prelude::*;

use crate::distance::Metric;
use crate::persist;

/// Process-wide count of [`DistanceMatrix`] builds (both true-distance and
/// proxy-scale), kept in the shared metrics registry under
/// `metric.matrix.builds`. The figure sweeps report it so a run can show
/// that every coreset was priced into a matrix at most once; tests pin it
/// to catch regressions that silently reintroduce per-search rebuilds.
fn matrix_builds() -> &'static kcenter_obs::Counter {
    static COUNTER: OnceLock<kcenter_obs::Counter> = OnceLock::new();
    COUNTER.get_or_init(|| kcenter_obs::counter("metric.matrix.builds"))
}

/// Number of [`DistanceMatrix`] builds performed by this process so far.
pub fn matrix_build_count() -> usize {
    matrix_builds().get() as usize
}

/// Minimum strictly-positive pairwise distance, or `None` if fewer than two
/// points exist or all points coincide.
///
/// The `O(n²)` scan compares [`Metric::cmp_distance`] proxies; one
/// [`Metric::cmp_to_distance`] converts the winner at the boundary.
pub fn min_positive_distance<P: Sync, M: Metric<P>>(points: &[P], metric: &M) -> Option<f64> {
    if points.len() < 2 {
        return None;
    }
    let min = points
        .par_iter()
        .enumerate()
        .map(|(i, a)| {
            // Block kernel over the row's tail; a stack sub-block keeps the
            // proxy buffer off the heap. Each proxy is bit-identical to the
            // scalar `cmp_distance` call it replaces, and the running-min
            // update visits them in the same order.
            let mut row_min = f64::INFINITY;
            let mut buf = [0.0f64; 256];
            for chunk in points[i + 1..].chunks(256) {
                let k = chunk.len();
                metric.cmp_distance_block(a, chunk, &mut buf[..k]);
                for &d in &buf[..k] {
                    if d > 0.0 && d < row_min {
                        row_min = d;
                    }
                }
            }
            row_min
        })
        .reduce(|| f64::INFINITY, f64::min);
    (min != f64::INFINITY).then(|| metric.cmp_to_distance(min))
}

/// Lower and upper bounds on the diameter of `points`.
///
/// Computes `r = max_j d(points[0], points[j])`; by the triangle inequality
/// the diameter lies in `[r, 2r]`. One `O(n)` pass instead of `O(n^2)`.
pub fn diameter_bounds<P: Sync, M: Metric<P>>(points: &[P], metric: &M) -> (f64, f64) {
    if points.len() < 2 {
        return (0.0, 0.0);
    }
    let r = metric.cmp_to_distance(
        points[1..]
            .par_iter()
            .map(|p| metric.cmp_distance(&points[0], p))
            .reduce(|| 0.0, f64::max),
    );
    (r, 2.0 * r)
}

/// All `n(n-1)/2` pairwise distances (unordered pairs).
///
/// Memory is quadratic; the exact-candidates radius search only calls this
/// for coresets below a configurable size threshold.
pub fn all_pairwise_distances<P: Sync, M: Metric<P>>(points: &[P], metric: &M) -> Vec<f64> {
    let n = points.len();
    if n < 2 {
        return Vec::new();
    }
    (0..n - 1)
        .into_par_iter()
        .flat_map_iter(|i| {
            let a = &points[i];
            points[i + 1..].iter().map(move |b| metric.distance(a, b))
        })
        .collect()
}

/// An immutable `f64` buffer at a stable address, usable as the backing
/// store of a [`DistanceMatrix`] without copying.
///
/// The persistent artifact store implements this for memory-mapped cache
/// entries so a warm matrix load is a header validation plus a pointer,
/// not a decode pass; [`Vec<f64>`] and [`Box<[f64]>`] implementations are
/// provided for owned buffers shared behind an `Arc`.
///
/// # Safety
///
/// Implementations must return the **same** buffer from every call:
/// immutable, at a stable address, and valid for as long as the value is
/// alive. The matrix holds the value behind an `Arc` and keeps a raw view
/// of the buffer for its own lifetime, so a buffer that moves, shrinks, or
/// is mutated after construction is undefined behaviour.
pub unsafe trait StableF64s: Send + Sync + 'static {
    /// The backing buffer.
    fn stable_f64s(&self) -> &[f64];
}

// SAFETY: behind the `Arc` the matrix holds, neither type can be mutated
// or reallocated (no interior mutability; `Arc::get_mut` fails while the
// matrix's clone is alive), so the heap buffer is stable and immutable.
unsafe impl StableF64s for Vec<f64> {
    fn stable_f64s(&self) -> &[f64] {
        self
    }
}

// SAFETY: as above — the boxed slice's buffer cannot move while shared.
unsafe impl StableF64s for Box<[f64]> {
    fn stable_f64s(&self) -> &[f64] {
        self
    }
}

/// The matrix's condensed entries: owned, or borrowed at a stable address
/// from an external owner (e.g. a memory-mapped store entry).
enum MatrixData {
    Owned(Vec<f64>),
    External(ExternalData),
}

/// A raw view into an external owner's buffer. The pointer is derived from
/// [`StableF64s::stable_f64s`] at construction and stays valid because the
/// owner is kept alive (and its buffer stable, per the trait contract) by
/// the `Arc`.
struct ExternalData {
    ptr: *const f64,
    len: usize,
    _owner: Arc<dyn StableF64s>,
}

// SAFETY: the viewed buffer is immutable and the owner is Send + Sync, so
// sharing or sending the raw view cannot race.
unsafe impl Send for ExternalData {}
unsafe impl Sync for ExternalData {}

impl Clone for ExternalData {
    fn clone(&self) -> Self {
        ExternalData {
            ptr: self.ptr,
            len: self.len,
            _owner: Arc::clone(&self._owner),
        }
    }
}

impl Clone for MatrixData {
    fn clone(&self) -> Self {
        match self {
            MatrixData::Owned(v) => MatrixData::Owned(v.clone()),
            MatrixData::External(e) => MatrixData::External(e.clone()),
        }
    }
}

/// A condensed symmetric distance matrix storing only the strict upper
/// triangle (`n(n-1)/2` entries), with `d(i,i) = 0`.
///
/// Used by `OutliersCluster` to avoid recomputing distances across the
/// multiple radius guesses of the binary search when the coreset is small
/// enough to cache.
#[derive(Clone)]
pub struct DistanceMatrix {
    n: usize,
    /// Upper-triangular entries in row-major order:
    /// `(0,1), (0,2), …, (0,n-1), (1,2), …`.
    data: MatrixData,
}

impl std::fmt::Debug for DistanceMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistanceMatrix")
            .field("n", &self.n)
            .field("entries", &self.condensed().len())
            .field(
                "backing",
                &match self.data {
                    MatrixData::Owned(_) => "owned",
                    MatrixData::External(_) => "external",
                },
            )
            .finish()
    }
}

impl PartialEq for DistanceMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.condensed() == other.condensed()
    }
}

impl DistanceMatrix {
    /// Builds the matrix from `points` under `metric`.
    ///
    /// The condensed buffer is allocated once and filled in place, parallel
    /// over rows: each row is a chunk-sized work unit for the pool, and its
    /// inner loop is a plain sequential scan (no per-element collection).
    pub fn build<P: Sync, M: Metric<P>>(points: &[P], metric: &M) -> Self {
        Self::build_with(points, |a, rest, row| {
            metric.distance_to_block(a, rest, row)
        })
    }

    /// Builds a matrix of [`Metric::cmp_distance`] comparison proxies —
    /// entirely sqrt-free for metrics with a non-trivial proxy. Lookups
    /// through [`DistanceMatrix::get`] then return *proxy* values; callers
    /// own the conversion discipline (see `CmpMatrixRef` in
    /// `kcenter-core`, which pairs this with the metric's conversions so
    /// matrix-backed and metric-backed scans apply one comparison rule).
    pub fn build_cmp<P: Sync, M: Metric<P>>(points: &[P], metric: &M) -> Self {
        Self::build_with(points, |a, rest, row| {
            metric.cmp_distance_block(a, rest, row)
        })
    }

    /// Shared parallel row-fill behind [`DistanceMatrix::build`] and
    /// [`DistanceMatrix::build_cmp`]: `fill(points[i], &points[i+1..],
    /// row)` writes each condensed row in one block-kernel call, so the
    /// whole strict upper triangle is evaluated by the vectorized batch
    /// kernels (bit-identical to the old per-pair scalar fill).
    fn build_with<P: Sync>(points: &[P], fill: impl Fn(&P, &[P], &mut [f64]) + Sync) -> Self {
        let n = points.len();
        let mut data = vec![0.0f64; n * n.saturating_sub(1) / 2];
        // Carve the condensed buffer into one mutable slice per row.
        let mut rows: Vec<(usize, &mut [f64])> = Vec::with_capacity(n.saturating_sub(1));
        let mut rest = data.as_mut_slice();
        for i in 0..n.saturating_sub(1) {
            let (row, tail) = rest.split_at_mut(n - 1 - i);
            rows.push((i, row));
            rest = tail;
        }
        rows.into_par_iter().for_each(|(i, row)| {
            fill(&points[i], &points[i + 1..], row);
        });
        matrix_builds().inc();
        DistanceMatrix {
            n,
            data: MatrixData::Owned(data),
        }
    }

    /// Reassembles a matrix from its condensed upper-triangle entries —
    /// the persistent store's decode path. Does **not** count as a build
    /// ([`matrix_build_count`] only tracks matrices actually priced by
    /// distance evaluations), which is what lets a warm-cache run prove
    /// `matrix_build_count() == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n·(n-1)/2`; the store's codec validates
    /// entry counts (and a checksum) before calling this.
    pub fn from_condensed(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            n * n.saturating_sub(1) / 2,
            "condensed length does not match n = {n}"
        );
        DistanceMatrix {
            n,
            data: MatrixData::Owned(data),
        }
    }

    /// A matrix viewing an external owner's condensed entries **without
    /// copying** — the persistent store's mmap-backed warm-load path. The
    /// owner (typically a validated memory mapping) is kept alive behind
    /// an `Arc`; per the [`StableF64s`] contract its buffer is immutable
    /// and address-stable, so lookups are as fast as the owned path.
    ///
    /// # Panics
    ///
    /// Panics if the owner's buffer length is not `n·(n-1)/2`.
    pub fn from_shared(n: usize, owner: Arc<dyn StableF64s>) -> Self {
        let slice = owner.stable_f64s();
        assert_eq!(
            slice.len(),
            n * n.saturating_sub(1) / 2,
            "condensed length does not match n = {n}"
        );
        let (ptr, len) = (slice.as_ptr(), slice.len());
        DistanceMatrix {
            n,
            data: MatrixData::External(ExternalData {
                ptr,
                len,
                _owner: owner,
            }),
        }
    }

    /// Whether the condensed entries live in an external (e.g. memory-
    /// mapped) buffer rather than an owned allocation.
    pub fn is_externally_backed(&self) -> bool {
        matches!(self.data, MatrixData::External(_))
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is over an empty point set.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Bytes held by the condensed buffer (heap for owned matrices, page
    /// cache for externally backed ones).
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of_val(self.condensed())
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        // Offset of row i in the condensed layout plus column offset.
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// The distance between points `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        use std::cmp::Ordering::*;
        let data = self.condensed();
        match i.cmp(&j) {
            Equal => 0.0,
            Less => data[self.index(i, j)],
            Greater => data[self.index(j, i)],
        }
    }

    /// The condensed upper-triangle entries (for selection over candidates).
    #[inline]
    pub fn condensed(&self) -> &[f64] {
        match &self.data {
            MatrixData::Owned(v) => v,
            // SAFETY: `ptr`/`len` were derived from the owner's stable,
            // immutable buffer, which the held `Arc` keeps alive.
            MatrixData::External(e) => unsafe { std::slice::from_raw_parts(e.ptr, e.len) },
        }
    }
}

/// A shared, memoized distance oracle over an owned point set.
///
/// The handle owns its points behind an `Arc` and lazily prices them into a
/// *proxy-scale* [`DistanceMatrix`] ([`Metric::cmp_distance`] entries, built
/// row-parallel) the first time a cached lookup is needed. Cloning the
/// handle shares the cache: every clone sees the same matrix, and the
/// matrix is built **at most once per handle family** no matter how many
/// radius searches, sweep configurations, or clones interrogate it — the
/// fix for sweeps that used to re-derive the same `O(|T|²)` matrix for
/// every ε and parallelism setting.
///
/// Point sets larger than `threshold` are never cached; lookups then
/// evaluate the metric on demand (the [`DistanceMatrix`] memory ceiling
/// discipline of the radius search). Either way all comparisons happen on
/// the metric's proxy scale, so cached and on-demand reads are bitwise
/// interchangeable (see the `Metric::cmp_distance` contract).
pub struct CachedOracle<'m, P, M> {
    points: Arc<[P]>,
    metric: &'m M,
    cache: Arc<OnceLock<DistanceMatrix>>,
    builds: Arc<AtomicUsize>,
    loads: Arc<AtomicUsize>,
    threshold: usize,
}

impl<P, M> Clone for CachedOracle<'_, P, M> {
    fn clone(&self) -> Self {
        CachedOracle {
            points: Arc::clone(&self.points),
            metric: self.metric,
            cache: Arc::clone(&self.cache),
            builds: Arc::clone(&self.builds),
            loads: Arc::clone(&self.loads),
            threshold: self.threshold,
        }
    }
}

impl<'m, P: Sync, M: Metric<P>> CachedOracle<'m, P, M> {
    /// Wraps `points` under `metric`; the proxy matrix is cached lazily
    /// when the point count is at most `threshold`.
    pub fn new(points: Vec<P>, metric: &'m M, threshold: usize) -> Self {
        CachedOracle {
            points: points.into(),
            metric,
            cache: Arc::new(OnceLock::new()),
            builds: Arc::new(AtomicUsize::new(0)),
            loads: Arc::new(AtomicUsize::new(0)),
            threshold,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the point set is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The owned points.
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// The metric the oracle evaluates and converts with.
    pub fn metric(&self) -> &'m M {
        self.metric
    }

    /// The cached proxy-scale matrix, building it on first use — or `None`
    /// when the point set exceeds the cache threshold. Shared across all
    /// clones of the handle; at most one build ever happens.
    ///
    /// The build runs inside the `OnceLock` initializer **and**
    /// parallelizes over the pool, so the *first* call for a handle family
    /// must come from a thread that is not currently executing a pool task
    /// scanning this same oracle — otherwise the initializing worker,
    /// which participates in scheduling while it builds, can steal a unit
    /// of that outer scan and re-enter the initializer on its own thread
    /// (deadlock). Algorithms consume the handle through
    /// `kcenter-core`'s `DistanceOracle` trait, whose `prepare()` hook
    /// resolves the cache on the submitting thread before any parallel
    /// scan; call `matrix()` (or `prepare()`) the same way in custom
    /// drivers.
    pub fn matrix(&self) -> Option<&DistanceMatrix> {
        if self.points.len() > self.threshold {
            return None;
        }
        Some(self.cache.get_or_init(|| self.resolve_matrix()))
    }

    /// The `OnceLock` initializer body: consult the process-wide
    /// persistence backend (when one is installed *and* the metric can
    /// fingerprint the points), otherwise — or on any miss — price the
    /// matrix and hand it back to the backend.
    ///
    /// A persisted matrix is only served when its size matches the point
    /// set (a stale or fingerprint-colliding entry is treated as a miss),
    /// and loading never counts as a build: warm runs must be able to
    /// prove `matrix_build_count() == 0` while `store_hit_count() > 0`.
    fn resolve_matrix(&self) -> DistanceMatrix {
        if let Some(backend) = persist::matrix_persistence() {
            if let Some(fingerprint) = self.metric.cache_fingerprint(&self.points) {
                if let Some(matrix) = backend.load(fingerprint) {
                    if matrix.len() == self.points.len() {
                        persist::record_store_hit();
                        self.loads.fetch_add(1, Ordering::Relaxed);
                        return matrix;
                    }
                }
                persist::record_store_miss();
                self.builds.fetch_add(1, Ordering::Relaxed);
                let matrix = DistanceMatrix::build_cmp(&self.points, self.metric);
                backend.store(fingerprint, &matrix);
                return matrix;
            }
        }
        self.builds.fetch_add(1, Ordering::Relaxed);
        DistanceMatrix::build_cmp(&self.points, self.metric)
    }

    /// How many times this handle family actually built its matrix (0
    /// before first cached use, never more than 1; 0 forever when the
    /// matrix was served by the persistent store — see
    /// [`CachedOracle::load_count`]).
    pub fn build_count(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }

    /// How many times this handle family loaded its matrix from the
    /// installed persistence backend instead of building it (0 or 1; a
    /// resolved oracle always has `build_count() + load_count() == 1`).
    pub fn load_count(&self) -> usize {
        self.loads.load(Ordering::Relaxed)
    }

    /// Bytes of heap memory held by the cached matrix (0 while unbuilt).
    pub fn heap_bytes(&self) -> usize {
        self.cache.get().map_or(0, DistanceMatrix::heap_bytes)
    }

    /// Comparison proxy for the distance between points `i` and `j` —
    /// matrix-backed when cached, metric-evaluated otherwise. Both paths
    /// return the exact same value ([`Metric::cmp_distance`]).
    #[inline]
    pub fn cmp_dist(&self, i: usize, j: usize) -> f64 {
        match self.matrix() {
            Some(m) => m.get(i, j),
            None => self.metric.cmp_distance(&self.points[i], &self.points[j]),
        }
    }

    /// True distance between points `i` and `j` (one conversion over
    /// [`CachedOracle::cmp_dist`]; bit-identical to `metric.distance` per
    /// the [`Metric`] round-trip contract).
    #[inline]
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        self.metric.cmp_to_distance(self.cmp_dist(i, j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Euclidean;
    use crate::point::Point;

    fn pts(coords: &[f64]) -> Vec<Point> {
        coords.iter().map(|&c| Point::new(vec![c])).collect()
    }

    #[test]
    fn min_positive_skips_duplicates() {
        let points = pts(&[0.0, 0.0, 5.0, 5.5]);
        assert_eq!(min_positive_distance(&points, &Euclidean), Some(0.5));
    }

    #[test]
    fn min_positive_none_for_identical_points() {
        let points = pts(&[2.0, 2.0, 2.0]);
        assert_eq!(min_positive_distance(&points, &Euclidean), None);
    }

    #[test]
    fn min_positive_none_for_singleton() {
        assert_eq!(min_positive_distance(&pts(&[1.0]), &Euclidean), None);
        assert_eq!(min_positive_distance::<Point, _>(&[], &Euclidean), None);
    }

    #[test]
    fn diameter_bounds_bracket_true_diameter() {
        let points = pts(&[0.0, 1.0, 10.0, -3.0]);
        let (lo, hi) = diameter_bounds(&points, &Euclidean);
        let true_diameter = 13.0;
        assert!(lo <= true_diameter + 1e-12, "lo={lo}");
        assert!(hi >= true_diameter - 1e-12, "hi={hi}");
    }

    #[test]
    fn diameter_bounds_degenerate() {
        assert_eq!(diameter_bounds(&pts(&[7.0]), &Euclidean), (0.0, 0.0));
    }

    #[test]
    fn all_pairwise_count_and_values() {
        let points = pts(&[0.0, 1.0, 3.0]);
        let mut d = all_pairwise_distances(&points, &Euclidean);
        d.sort_by(f64::total_cmp);
        assert_eq!(d, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn distance_matrix_symmetric_lookup() {
        let points = pts(&[0.0, 2.0, 7.0, -1.0]);
        let m = DistanceMatrix::build(&points, &Euclidean);
        assert_eq!(m.len(), 4);
        for i in 0..4 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(m.get(i, j), m.get(j, i));
                assert_eq!(
                    m.get(i, j),
                    Euclidean.distance(&points[i], &points[j]),
                    "mismatch at ({i},{j})"
                );
            }
        }
        assert_eq!(m.condensed().len(), 6);
    }

    #[test]
    fn cached_oracle_builds_once_across_clones() {
        let points = pts(&[0.0, 2.0, 7.0, -1.0]);
        let oracle = CachedOracle::new(points.clone(), &Euclidean, 1_000);
        assert_eq!(oracle.build_count(), 0);
        assert_eq!(oracle.heap_bytes(), 0);
        let clone_a = oracle.clone();
        let clone_b = oracle.clone();
        // Interrogate the clones in any order: exactly one build.
        for o in [&clone_a, &oracle, &clone_b] {
            for i in 0..4 {
                for j in 0..4 {
                    assert_eq!(
                        o.dist(i, j).to_bits(),
                        Euclidean.distance(&points[i], &points[j]).to_bits()
                    );
                    assert_eq!(
                        o.cmp_dist(i, j).to_bits(),
                        Euclidean.cmp_distance(&points[i], &points[j]).to_bits()
                    );
                }
            }
        }
        assert_eq!(oracle.build_count(), 1);
        assert_eq!(clone_b.build_count(), 1);
        assert!(oracle.heap_bytes() > 0);
        assert!(oracle.matrix().is_some());
        assert_eq!(oracle.build_count(), 1, "matrix() must not rebuild");
    }

    #[test]
    fn cached_oracle_above_threshold_stays_on_demand() {
        let points = pts(&[0.0, 3.0, 5.0]);
        let oracle = CachedOracle::new(points.clone(), &Euclidean, 2);
        assert!(oracle.matrix().is_none());
        assert_eq!(oracle.dist(0, 2), 5.0);
        assert_eq!(oracle.build_count(), 0);
        assert_eq!(oracle.heap_bytes(), 0);
    }

    #[test]
    fn cached_oracle_reports_shape() {
        let oracle = CachedOracle::new(pts(&[1.0, 4.0]), &Euclidean, 10);
        assert_eq!(oracle.len(), 2);
        assert!(!oracle.is_empty());
        assert_eq!(oracle.points().len(), 2);
        let empty: CachedOracle<Point, _> = CachedOracle::new(Vec::new(), &Euclidean, 10);
        assert!(empty.is_empty());
    }

    #[test]
    fn matrix_build_counter_is_monotone() {
        // The counter is process-global and tests run concurrently, so only
        // lower bounds are asserted.
        let before = matrix_build_count();
        let _ = DistanceMatrix::build(&pts(&[0.0, 1.0]), &Euclidean);
        assert!(matrix_build_count() > before);
        let oracle = CachedOracle::new(pts(&[0.0, 1.0, 2.0]), &Euclidean, 10);
        let mid = matrix_build_count();
        let _ = oracle.cmp_dist(0, 1);
        let _ = oracle.cmp_dist(1, 2);
        assert!(matrix_build_count() > mid);
        assert_eq!(oracle.build_count(), 1);
    }

    #[test]
    fn from_condensed_round_trips_without_counting_a_build() {
        let points = pts(&[0.0, 2.0, 7.0, -1.0]);
        let m = DistanceMatrix::build(&points, &Euclidean);
        let before = matrix_build_count();
        let rebuilt = DistanceMatrix::from_condensed(m.len(), m.condensed().to_vec());
        assert_eq!(
            matrix_build_count(),
            before,
            "loads must not count as builds"
        );
        assert_eq!(rebuilt.len(), m.len());
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(rebuilt.get(i, j).to_bits(), m.get(i, j).to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "condensed length")]
    fn from_condensed_rejects_misaligned_data() {
        let _ = DistanceMatrix::from_condensed(4, vec![0.0; 5]);
    }

    #[test]
    fn from_shared_views_the_owner_without_copying() {
        let points = pts(&[0.0, 2.0, 7.0, -1.0]);
        let owned = DistanceMatrix::build(&points, &Euclidean);
        let buffer: Arc<Vec<f64>> = Arc::new(owned.condensed().to_vec());
        let before = matrix_build_count();
        let shared = DistanceMatrix::from_shared(owned.len(), buffer.clone());
        assert_eq!(matrix_build_count(), before, "views are not builds");
        assert!(shared.is_externally_backed());
        assert!(!owned.is_externally_backed());
        // The view's data pointer is the owner's buffer: zero copy.
        assert!(std::ptr::eq(shared.condensed().as_ptr(), buffer.as_ptr()));
        assert_eq!(shared, owned);
        let cloned = shared.clone();
        drop(shared);
        drop(buffer);
        // The clone keeps the owner alive through its Arc.
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(cloned.get(i, j).to_bits(), owned.get(i, j).to_bits());
            }
        }
        assert!(format!("{cloned:?}").contains("external"));
        assert!(format!("{owned:?}").contains("owned"));
    }

    #[test]
    #[should_panic(expected = "condensed length")]
    fn from_shared_rejects_misaligned_data() {
        let _ = DistanceMatrix::from_shared(4, Arc::new(vec![0.0; 5]));
    }

    #[test]
    fn distance_matrix_empty_and_singleton() {
        let m = DistanceMatrix::build::<Point, _>(&[], &Euclidean);
        assert!(m.is_empty());
        assert_eq!(m.condensed().len(), 0);
        let m1 = DistanceMatrix::build(&pts(&[1.0]), &Euclidean);
        assert_eq!(m1.len(), 1);
        assert_eq!(m1.get(0, 0), 0.0);
    }
}
