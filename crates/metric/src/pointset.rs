//! Structure-of-arrays point storage for the block distance kernels.
//!
//! [`Point`] stores each point's coordinates in its own heap allocation —
//! right for construction-time validation, hostile to the `O(n·τ)` scans
//! every algorithm in this workspace bottoms out in: a nearest-center pass
//! over `Vec<Point>` chases one pointer per point, so the prefetcher sees
//! no contiguity and the compiler cannot vectorize across points.
//!
//! [`PointSet`] keeps all `n·dim` coordinates in **one** contiguous
//! point-major `f64` block (row `i` is `coords[i·dim .. (i+1)·dim]`). That
//! layout is byte-identical to the shard codec's on-disk coordinate block,
//! so a mmap'd shard can be viewed as a `PointSet` with zero copies through
//! the same [`StableF64s`] machinery the distance-matrix store already uses
//! — the on-disk layout and the in-memory kernel layout are the same thing.
//!
//! [`PointRef`] is a borrowed view of one row, and the [`Coordinates`]
//! trait lets metrics and algorithms treat `Point` and `PointRef`
//! interchangeably: the zero-copy worker path runs the exact same kernels
//! as the owned path, on the exact same bits.
//!
//! # Invariant
//!
//! Like [`Point`], every coordinate in a `PointSet` is finite — enforced at
//! construction ([`PointSet::try_from_shared`] validates untrusted buffers,
//! mirroring [`Point::try_new`]) so the distance kernels never re-check for
//! `NaN`/`inf` in their hot loops and comparisons stay total.

use std::fmt;
use std::sync::Arc;

use crate::pairwise::StableF64s;
use crate::point::Point;

/// Anything that exposes a point as a flat finite-`f64` coordinate slice.
///
/// Implemented by [`Point`] (owned, per-point allocation) and
/// [`PointRef`] (borrowed row of a [`PointSet`]); the concrete metrics are
/// generic over this trait, so every algorithm in the workspace runs
/// unchanged — and bit-identically — on either representation.
pub trait Coordinates: Send + Sync {
    /// The coordinates as a slice. Implementations guarantee every value
    /// is finite (their constructors validate).
    fn coords(&self) -> &[f64];

    /// The dimension of the point.
    #[inline]
    fn dim(&self) -> usize {
        self.coords().len()
    }
}

impl Coordinates for Point {
    #[inline]
    fn coords(&self) -> &[f64] {
        Point::coords(self)
    }
}

impl Coordinates for PointRef<'_> {
    #[inline]
    fn coords(&self) -> &[f64] {
        self.coords
    }
}

/// A zero-copy view of one point (one row) of a [`PointSet`].
///
/// Two words (pointer + length), `Copy`, no allocation: a `Vec<PointRef>`
/// over a mapped shard costs `16·n` bytes of views, never a coordinate
/// copy.
#[derive(Clone, Copy, PartialEq)]
pub struct PointRef<'a> {
    coords: &'a [f64],
}

impl<'a> PointRef<'a> {
    /// Views a validated coordinate row. Crate-internal: rows only come
    /// from containers that already enforced the finiteness invariant.
    #[inline]
    pub(crate) fn from_validated(coords: &'a [f64]) -> Self {
        debug_assert!(!coords.is_empty());
        debug_assert!(coords.iter().all(|c| c.is_finite()));
        PointRef { coords }
    }

    /// The coordinates as a slice (with the view's full lifetime).
    #[inline]
    pub fn coords(&self) -> &'a [f64] {
        self.coords
    }

    /// The dimension of the point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Copies the row into an owned [`Point`].
    pub fn to_point(&self) -> Point {
        Point::new(self.coords.to_vec())
    }
}

impl fmt::Debug for PointRef<'_> {
    /// `Debug` like `Point`'s: a plain coordinate list.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.coords.iter()).finish()
    }
}

/// Error returned when constructing a [`PointSet`] from invalid data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointSetError {
    /// A coordinate was `NaN` or infinite, at flat index
    /// `point * dim + coordinate` of the block.
    NonFinite {
        /// Flat index of the offending value in the coordinate block.
        index: usize,
    },
    /// The backing buffer's length does not equal `n · dim`.
    ShapeMismatch {
        /// Expected element count (`n · dim`).
        expected: usize,
        /// Actual element count of the buffer.
        actual: usize,
    },
    /// `dim == 0` with `n > 0`: points must have at least one coordinate.
    ZeroDim,
    /// A source [`Point`] had a different dimension than the first.
    DimMismatch {
        /// Index of the offending point.
        index: usize,
        /// Dimension of the first point.
        expected: usize,
        /// Dimension of the offending point.
        actual: usize,
    },
}

impl fmt::Display for PointSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointSetError::NonFinite { index } => {
                write!(f, "coordinate at flat index {index} is not finite")
            }
            PointSetError::ShapeMismatch { expected, actual } => {
                write!(f, "buffer holds {actual} f64s, shape needs {expected}")
            }
            PointSetError::ZeroDim => write!(f, "points must have at least one coordinate"),
            PointSetError::DimMismatch {
                index,
                expected,
                actual,
            } => write!(
                f,
                "point {index} has dimension {actual}, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for PointSetError {}

/// A structure-of-arrays point set: `n` points of dimension `dim` in one
/// contiguous point-major `f64` block.
///
/// The block lives behind an `Arc<dyn StableF64s>` — an owned `Vec<f64>`
/// for the copy constructors, or an external stable buffer (e.g. the
/// store's mmap of a shard) for the zero-copy path. A raw view of the
/// buffer is cached at construction (the [`StableF64s`] contract makes it
/// address-stable), so row access never pays dynamic dispatch.
pub struct PointSet {
    ptr: *const f64,
    n: usize,
    dim: usize,
    _owner: Arc<dyn StableF64s>,
}

// SAFETY: the viewed buffer is immutable and the owner is Send + Sync
// (StableF64s supertraits), so sharing or sending the raw view cannot
// race — the same argument as the matrix's external backing.
unsafe impl Send for PointSet {}
unsafe impl Sync for PointSet {}

impl Clone for PointSet {
    fn clone(&self) -> Self {
        PointSet {
            ptr: self.ptr,
            n: self.n,
            dim: self.dim,
            _owner: Arc::clone(&self._owner),
        }
    }
}

impl PointSet {
    /// Copies `points` into a fresh contiguous block.
    ///
    /// # Panics
    ///
    /// Panics if the points do not all share one dimension; use
    /// [`PointSet::try_from_points`] to handle that as an error.
    pub fn from_points(points: &[Point]) -> PointSet {
        Self::try_from_points(points).expect("invalid point set")
    }

    /// Copies `points` into a fresh contiguous block, requiring a single
    /// common dimension.
    ///
    /// # Errors
    ///
    /// Returns [`PointSetError::DimMismatch`] if the points disagree on
    /// dimension. (Finiteness needs no re-check: every [`Point`] was
    /// validated at its own construction.)
    pub fn try_from_points(points: &[Point]) -> Result<PointSet, PointSetError> {
        let n = points.len();
        let dim = points.first().map_or(0, Point::dim);
        let mut block = Vec::with_capacity(n * dim);
        for (index, p) in points.iter().enumerate() {
            if p.dim() != dim {
                return Err(PointSetError::DimMismatch {
                    index,
                    expected: dim,
                    actual: p.dim(),
                });
            }
            block.extend_from_slice(p.coords());
        }
        Ok(Self::from_validated_owner(Arc::new(block), n, dim))
    }

    /// Views `n · dim` coordinates in `owner`'s stable buffer **without
    /// copying** — the shard-to-kernel zero-copy path.
    ///
    /// Validates the same invariant as [`Point::try_new`]: the shape must
    /// match exactly and every coordinate must be finite, so a corrupt
    /// (e.g. `NaN`-bearing) mapped shard is a clean error here rather than
    /// a poisoned distance scan later.
    ///
    /// # Errors
    ///
    /// [`PointSetError::ShapeMismatch`] if the buffer is not exactly
    /// `n · dim` values, [`PointSetError::ZeroDim`] if `n > 0` with
    /// `dim == 0`, and [`PointSetError::NonFinite`] on the first `NaN` or
    /// infinite coordinate.
    pub fn try_from_shared(
        owner: Arc<dyn StableF64s>,
        n: usize,
        dim: usize,
    ) -> Result<PointSet, PointSetError> {
        if n > 0 && dim == 0 {
            return Err(PointSetError::ZeroDim);
        }
        let expected = n.checked_mul(dim).ok_or(PointSetError::ShapeMismatch {
            expected: usize::MAX,
            actual: owner.stable_f64s().len(),
        })?;
        let slice = owner.stable_f64s();
        if slice.len() != expected {
            return Err(PointSetError::ShapeMismatch {
                expected,
                actual: slice.len(),
            });
        }
        if let Some(index) = slice.iter().position(|c| !c.is_finite()) {
            return Err(PointSetError::NonFinite { index });
        }
        Ok(Self::from_validated_owner(owner, n, dim))
    }

    /// Caches the raw view once the invariants hold.
    fn from_validated_owner(owner: Arc<dyn StableF64s>, n: usize, dim: usize) -> PointSet {
        let ptr = owner.stable_f64s().as_ptr();
        PointSet {
            ptr,
            n,
            dim,
            _owner: owner,
        }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the set holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The common dimension of the points (0 only for an empty set).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The whole contiguous coordinate block, point-major.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        // SAFETY: `ptr` was derived from the owner's stable, immutable
        // buffer of exactly `n · dim` values, which the held `Arc` keeps
        // alive (see `StableF64s`).
        unsafe { std::slice::from_raw_parts(self.ptr, self.n * self.dim) }
    }

    /// The coordinates of point `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.coords()[i * self.dim..(i + 1) * self.dim]
    }

    /// A zero-copy view of point `i`.
    #[inline]
    pub fn get(&self, i: usize) -> PointRef<'_> {
        PointRef::from_validated(self.row(i))
    }

    /// Iterates zero-copy views of all points, in order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = PointRef<'_>> + '_ {
        (0..self.n).map(|i| self.get(i))
    }

    /// Copies every row out into owned [`Point`]s (the inverse of
    /// [`PointSet::from_points`]).
    pub fn to_points(&self) -> Vec<Point> {
        self.iter().map(|r| r.to_point()).collect()
    }
}

impl fmt::Debug for PointSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PointSet")
            .field("n", &self.n)
            .field("dim", &self.dim)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(rows: &[&[f64]]) -> Vec<Point> {
        rows.iter().map(|r| Point::new(r.to_vec())).collect()
    }

    #[test]
    fn copies_points_into_one_block() {
        let points = pts(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let set = PointSet::from_points(&points);
        assert_eq!(set.len(), 3);
        assert_eq!(set.dim(), 2);
        assert_eq!(set.coords(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(set.row(1), &[3.0, 4.0]);
        assert_eq!(set.get(2).coords(), &[5.0, 6.0]);
        assert_eq!(set.to_points(), points);
        let views: Vec<PointRef<'_>> = set.iter().collect();
        assert_eq!(views.len(), 3);
        assert_eq!(views[0].dim(), 2);
        assert_eq!(views[0].to_point(), points[0]);
    }

    #[test]
    fn empty_set_is_fine() {
        let set = PointSet::from_points(&[]);
        assert!(set.is_empty());
        assert_eq!(set.dim(), 0);
        assert_eq!(set.coords().len(), 0);
        assert_eq!(set.iter().count(), 0);
    }

    #[test]
    fn rejects_mixed_dimensions() {
        let points = pts(&[&[1.0, 2.0], &[3.0]]);
        let err = PointSet::try_from_points(&points).unwrap_err();
        assert_eq!(
            err,
            PointSetError::DimMismatch {
                index: 1,
                expected: 2,
                actual: 1
            }
        );
    }

    #[test]
    fn shared_view_is_zero_copy() {
        let block: Arc<Vec<f64>> = Arc::new(vec![1.0, 2.0, 3.0, 4.0]);
        let set = PointSet::try_from_shared(block.clone(), 2, 2).unwrap();
        assert!(std::ptr::eq(set.coords().as_ptr(), block.as_ptr()));
        let cloned = set.clone();
        drop(set);
        // The clone keeps the owner alive through its Arc.
        assert_eq!(cloned.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn shared_view_validates_shape_and_finiteness() {
        let bad_shape = PointSet::try_from_shared(Arc::new(vec![0.0; 5]), 2, 2).unwrap_err();
        assert_eq!(
            bad_shape,
            PointSetError::ShapeMismatch {
                expected: 4,
                actual: 5
            }
        );
        let zero_dim = PointSet::try_from_shared(Arc::new(Vec::<f64>::new()), 3, 0).unwrap_err();
        assert_eq!(zero_dim, PointSetError::ZeroDim);
        let nan =
            PointSet::try_from_shared(Arc::new(vec![0.0, 1.0, f64::NAN, 3.0]), 2, 2).unwrap_err();
        assert_eq!(nan, PointSetError::NonFinite { index: 2 });
        let inf = PointSet::try_from_shared(Arc::new(vec![f64::INFINITY]), 1, 1).unwrap_err();
        assert_eq!(inf, PointSetError::NonFinite { index: 0 });
        // Errors display cleanly.
        assert!(nan.to_string().contains("not finite"));
        assert!(zero_dim.to_string().contains("at least one"));
    }

    #[test]
    #[should_panic(expected = "invalid point set")]
    fn from_points_panics_on_mixed_dims() {
        let points = pts(&[&[1.0], &[1.0, 2.0]]);
        let _ = PointSet::from_points(&points);
    }

    #[test]
    fn coordinates_trait_is_interchangeable() {
        let points = pts(&[&[1.5, -2.0]]);
        let set = PointSet::from_points(&points);
        fn flat<C: Coordinates>(c: &C) -> (usize, Vec<f64>) {
            (c.dim(), c.coords().to_vec())
        }
        assert_eq!(flat(&points[0]), flat(&set.get(0)));
    }

    #[test]
    fn debug_formats() {
        let set = PointSet::from_points(&pts(&[&[1.0, 2.0]]));
        assert_eq!(format!("{:?}", set.get(0)), "[1.0, 2.0]");
        let s = format!("{set:?}");
        assert!(s.contains("PointSet") && s.contains("dim"), "{s}");
    }
}
