//! Runtime-dispatched block distance kernels over structure-of-arrays
//! points.
//!
//! The batched entry points ([`cmp_block`], [`within_block`]) evaluate one
//! query against a block of points. On `x86_64` they dispatch at runtime to
//! SSE2 or AVX implementations (detected once per process); everywhere
//! else, and under the `KCENTER_FORCE_SCALAR` escape hatch (or
//! [`set_force_scalar`]), they run the scalar reference kernels.
//!
//! # Bit-identity
//!
//! Every vector kernel is **lane-per-point**: lane `l` of the accumulator
//! performs exactly the per-dimension sequential chain the scalar kernel
//! performs for point `l` — broadcast `q[d]`, gather coordinate `d` of 2/4
//! rows, subtract, square-or-abs, accumulate — in the same order, with the
//! same IEEE-754 operations, and **no FMA** (fused rounding would change
//! results). Element-wise vector sub/mul/add are bitwise-identical to their
//! scalar counterparts, `abs` is a sign-bit clear in both forms, and the
//! Chebyshev `max` only ever compares non-negative values with cleared sign
//! bits (the finite-point invariant excludes `NaN`; `abs` excludes `-0.0`),
//! the one regime where `maxpd` and `f64::max` agree bitwise. Remainder
//! points (block length not a multiple of the vector width) run the scalar
//! kernel. Consequently every path — scalar, SSE2, AVX — returns the same
//! bits, which is what lets the golden figures and the exec determinism
//! suite stay byte-identical whichever ISA the host has.
//!
//! # f32 proxy mode
//!
//! `KCENTER_F32_PROXY=1` (or [`set_f32_proxy`]) opts threshold scans
//! ([`within_block`]) into a single-precision first pass: the proxy
//! classifies each point against the radius with a rigorous error margin,
//! and only points inside the uncertainty band are re-verified with the
//! exact `f64` kernel. Decisions are therefore **identical** to the pure
//! `f64` path by construction; only the arithmetic for clear-cut points is
//! cheaper. Value-returning kernels ([`cmp_block`]) never use the proxy.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use crate::pointset::Coordinates;

/// The difference-chain metrics the shared vector kernels cover.
/// [`crate::CosineAngular`] needs three accumulators and an `acos`
/// epilogue, so it has its own entry points ([`cosine_block`]) rather
/// than a variant here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelMetric {
    /// Squared-distance proxy chain: `acc += (q[d] - r[d])²`.
    Euclidean,
    /// L1 chain: `acc += |q[d] - r[d]|`.
    Manhattan,
    /// L∞ chain: `acc = max(acc, |q[d] - r[d]|)`.
    Chebyshev,
}

/// Instruction set a kernel call will execute with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Isa {
    /// Portable scalar reference kernels.
    Scalar,
    /// 2 points per iteration (`x86_64` baseline).
    Sse2,
    /// 4 points per iteration.
    Avx,
}

/// `true`-ish environment flag: set and neither empty nor `"0"`.
fn env_flag(name: &str) -> bool {
    std::env::var_os(name).is_some_and(|v| !v.is_empty() && v != "0")
}

fn force_scalar_cell() -> &'static AtomicBool {
    static CELL: OnceLock<AtomicBool> = OnceLock::new();
    CELL.get_or_init(|| AtomicBool::new(env_flag("KCENTER_FORCE_SCALAR")))
}

/// Overrides the `KCENTER_FORCE_SCALAR` escape hatch programmatically —
/// tests and benchmarks toggle this instead of racing on the process
/// environment.
pub fn set_force_scalar(on: bool) {
    force_scalar_cell().store(on, Ordering::Relaxed);
}

/// Whether kernels are currently pinned to the scalar reference path.
pub fn force_scalar() -> bool {
    force_scalar_cell().load(Ordering::Relaxed)
}

fn f32_proxy_cell() -> &'static AtomicBool {
    static CELL: OnceLock<AtomicBool> = OnceLock::new();
    CELL.get_or_init(|| AtomicBool::new(env_flag("KCENTER_F32_PROXY")))
}

/// Overrides the `KCENTER_F32_PROXY` opt-in programmatically.
pub fn set_f32_proxy(on: bool) {
    f32_proxy_cell().store(on, Ordering::Relaxed);
}

/// Whether threshold scans run the f32 proxy first pass.
pub fn f32_proxy() -> bool {
    f32_proxy_cell().load(Ordering::Relaxed)
}

/// The best ISA this host supports, detected once per process.
fn detected_isa() -> Isa {
    static DETECTED: OnceLock<Isa> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx") {
                Isa::Avx
            } else if std::arch::is_x86_feature_detected!("sse2") {
                Isa::Sse2
            } else {
                Isa::Scalar
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Isa::Scalar
        }
    })
}

/// The ISA the next kernel call will use (detection gated by the force-
/// scalar escape hatch).
pub fn active_isa() -> Isa {
    if force_scalar() {
        Isa::Scalar
    } else {
        detected_isa()
    }
}

/// Scalar comparison-proxy kernel for one pair — **the reference**: these
/// are character-for-character the accumulation chains of the scalar
/// `Metric` implementations, and the contract every vector kernel is held
/// to bitwise.
#[inline]
pub fn scalar_cmp(kind: KernelMetric, q: &[f64], r: &[f64]) -> f64 {
    debug_assert_eq!(q.len(), r.len(), "dimension mismatch");
    match kind {
        KernelMetric::Euclidean => q
            .iter()
            .zip(r)
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum(),
        KernelMetric::Manhattan => q.iter().zip(r).map(|(x, y)| (x - y).abs()).sum(),
        KernelMetric::Chebyshev => q
            .iter()
            .zip(r)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max),
    }
}

/// Scalar reference implementation of [`cmp_block`], exported so parity
/// tests can pin the dispatched kernels against it regardless of the
/// force-scalar setting.
pub fn cmp_block_scalar<P: Coordinates>(
    kind: KernelMetric,
    query: &[f64],
    block: &[P],
    out: &mut [f64],
) {
    assert_eq!(block.len(), out.len(), "output length mismatch");
    for (o, p) in out.iter_mut().zip(block) {
        *o = scalar_cmp(kind, query, p.coords());
    }
}

/// Comparison proxies of `query` against every point of `block`, written
/// into `out` (`out[i] = cmp(query, block[i])`): the squared distance for
/// [`KernelMetric::Euclidean`], the true distance for the L1/L∞ kernels.
///
/// Bit-identical to calling the scalar kernel per point, on every ISA.
///
/// # Panics
///
/// Panics if `out.len() != block.len()`.
pub fn cmp_block<P: Coordinates>(kind: KernelMetric, query: &[f64], block: &[P], out: &mut [f64]) {
    assert_eq!(block.len(), out.len(), "output length mismatch");
    match active_isa() {
        Isa::Scalar => cmp_block_scalar(kind, query, block, out),
        #[cfg(target_arch = "x86_64")]
        Isa::Sse2 => x86::cmp_block_sse2(kind, query, block, out),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx => x86::cmp_block_avx(kind, query, block, out),
        #[cfg(not(target_arch = "x86_64"))]
        _ => cmp_block_scalar(kind, query, block, out),
    }
}

/// Points within the radius-`cmp_threshold` ball around `query`:
/// `out[i] = cmp(query, block[i]) <= cmp_threshold` (both sides on the
/// metric's comparison-proxy scale).
///
/// Decisions are identical to computing the exact `f64` proxy and
/// comparing — including under the opt-in f32 proxy mode, whose margin
/// classification re-verifies every uncertain point with the exact kernel.
///
/// # Panics
///
/// Panics if `out.len() != block.len()`.
pub fn within_block<P: Coordinates>(
    kind: KernelMetric,
    query: &[f64],
    block: &[P],
    cmp_threshold: f64,
    out: &mut [bool],
) {
    assert_eq!(block.len(), out.len(), "output length mismatch");
    if f32_proxy() {
        within_block_f32(kind, query, block, cmp_threshold, out);
        return;
    }
    // Exact path: proxy values through the dispatched kernel, compared in
    // place. Stack sub-blocks keep the distance buffer out of the heap.
    let mut buf = [0.0f64; 64];
    for (bchunk, ochunk) in block.chunks(64).zip(out.chunks_mut(64)) {
        let k = bchunk.len();
        cmp_block(kind, query, bchunk, &mut buf[..k]);
        for (o, &d) in ochunk.iter_mut().zip(&buf[..k]) {
            *o = d <= cmp_threshold;
        }
    }
}

/// Scalar cosine-angular chain for one pair — **the reference**:
/// character-for-character the accumulation chain of
/// [`crate::CosineAngular`]'s `distance`, ending in the shared
/// `cosine_finish` epilogue.
#[inline]
pub fn scalar_cosine(q: &[f64], r: &[f64]) -> f64 {
    debug_assert_eq!(q.len(), r.len(), "dimension mismatch");
    let (mut dot, mut na, mut nb) = (0.0, 0.0, 0.0);
    for (x, y) in q.iter().zip(r) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    cosine_finish(dot, na, nb)
}

/// The zero-vector boundary + clamp + `acos` epilogue every cosine path
/// funnels through — scalar per lane on every ISA, so the vector kernels
/// only ever vectorize the bit-exact accumulation chains.
#[inline]
fn cosine_finish(dot: f64, na: f64, nb: f64) -> f64 {
    if na == 0.0 && nb == 0.0 {
        return 0.0;
    }
    if na == 0.0 || nb == 0.0 {
        return std::f64::consts::FRAC_PI_2;
    }
    // Clamp for floating-point drift before acos.
    (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0).acos()
}

/// Scalar reference implementation of [`cosine_block`], exported so parity
/// tests can pin the dispatched kernels against it regardless of the
/// force-scalar setting.
pub fn cosine_block_scalar<P: Coordinates>(query: &[f64], block: &[P], out: &mut [f64]) {
    assert_eq!(block.len(), out.len(), "output length mismatch");
    for (o, p) in out.iter_mut().zip(block) {
        *o = scalar_cosine(query, p.coords());
    }
}

/// Angular distances of `query` against every point of `block`, written
/// into `out` (`out[i] = arccos(cos_sim(query, block[i]))`, with the
/// zero-vector conventions of [`crate::CosineAngular`]).
///
/// Bit-identity argument, lane-per-point as everywhere else: the three
/// accumulators are independent sequential sums, so interleaving does not
/// affect any of them. Lane `l` of the vector `dot`/`nb` accumulators
/// performs exactly the scalar per-dimension chain for point `l` —
/// broadcast `q[d]`, gather coordinate `d`, multiply, add, **no FMA** —
/// and the query's self-dot `na` depends on the query alone, so one
/// scalar accumulation (the same op sequence the scalar kernel runs per
/// point) serves every lane. The epilogue (`cosine_finish`) is scalar
/// per lane on every ISA. Remainder points run the scalar kernel.
///
/// # Panics
///
/// Panics if `out.len() != block.len()`.
pub fn cosine_block<P: Coordinates>(query: &[f64], block: &[P], out: &mut [f64]) {
    assert_eq!(block.len(), out.len(), "output length mismatch");
    match active_isa() {
        Isa::Scalar => cosine_block_scalar(query, block, out),
        #[cfg(target_arch = "x86_64")]
        Isa::Sse2 => x86::cosine_block_sse2(query, block, out),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx => x86::cosine_block_avx(query, block, out),
        #[cfg(not(target_arch = "x86_64"))]
        _ => cosine_block_scalar(query, block, out),
    }
}

/// f32 proxy first pass for [`within_block`].
///
/// For each point the proxy value is computed in single precision and
/// compared against `cmp_threshold ± margin`, where `margin` bounds the
/// worst-case error of the f32 evaluation relative to the exact f64 value
/// (standard forward error analysis with generous constants; `C` is the
/// largest coordinate magnitude in the pair, `m` the dimension, `u` the
/// f32 precision). Clear-cut points are decided by the proxy; points in
/// the band are re-verified with the exact scalar kernel, so the final
/// decision vector equals the exact path's bit for bit.
fn within_block_f32<P: Coordinates>(
    kind: KernelMetric,
    query: &[f64],
    block: &[P],
    cmp_threshold: f64,
    out: &mut [bool],
) {
    let m = query.len();
    let q32: Vec<f32> = query.iter().map(|&x| x as f32).collect();
    let qmax = query.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
    // 2^-23: one full f32 epsilon per rounding, double the unit roundoff —
    // slack on top of already-conservative margin constants.
    let u = f32::EPSILON as f64;
    let md = m as f64;
    for (o, p) in out.iter_mut().zip(block) {
        let r = p.coords();
        let mut rmax = 0.0f32;
        let proxy32 = match kind {
            KernelMetric::Euclidean => {
                let mut acc = 0.0f32;
                for (d, &x) in q32.iter().enumerate() {
                    let y = r[d] as f32;
                    rmax = rmax.max(y.abs());
                    let diff = x - y;
                    acc += diff * diff;
                }
                acc
            }
            KernelMetric::Manhattan => {
                let mut acc = 0.0f32;
                for (d, &x) in q32.iter().enumerate() {
                    let y = r[d] as f32;
                    rmax = rmax.max(y.abs());
                    acc += (x - y).abs();
                }
                acc
            }
            KernelMetric::Chebyshev => {
                let mut acc = 0.0f32;
                for (d, &x) in q32.iter().enumerate() {
                    let y = r[d] as f32;
                    rmax = rmax.max(y.abs());
                    acc = acc.max((x - y).abs());
                }
                acc
            }
        };
        // The f32 coordinate maxima under-estimate the f64 maxima by at
        // most one rounding; the (1 + 1e-6) factor restores a sound bound.
        let c = qmax.max(rmax as f64 * (1.0 + 1e-6));
        let margin = match kind {
            KernelMetric::Euclidean => 8.0 * c * c * u * (md * md + 8.0 * md + 8.0),
            KernelMetric::Manhattan => 4.0 * c * u * (md * md + 4.0 * md + 4.0),
            KernelMetric::Chebyshev => 16.0 * c * u,
        };
        let proxy = proxy32 as f64;
        *o = if !proxy.is_finite() || !(margin.is_finite()) {
            // Coordinates overflowed f32: the proxy says nothing.
            scalar_cmp(kind, query, r) <= cmp_threshold
        } else if proxy > cmp_threshold + margin {
            false
        } else if proxy < cmp_threshold - margin {
            true
        } else {
            scalar_cmp(kind, query, r) <= cmp_threshold
        };
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! SSE2 (2 lanes) and AVX (4 lanes) kernels. Each `#[target_feature]`
    //! function is non-generic and takes concrete coordinate rows; the
    //! safe dispatchers group the block and handle remainders with the
    //! scalar kernel.

    use core::arch::x86_64::*;

    use super::{cosine_finish, scalar_cmp, scalar_cosine, KernelMetric};
    use crate::pointset::Coordinates;

    /// Four points per iteration.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX support; all rows must have `q.len()`
    /// elements.
    #[target_feature(enable = "avx")]
    unsafe fn cmp4_avx(kind: KernelMetric, q: &[f64], r: [&[f64]; 4]) -> [f64; 4] {
        let sign = _mm256_set1_pd(-0.0);
        let mut acc = _mm256_setzero_pd();
        for (d, &x) in q.iter().enumerate() {
            let qv = _mm256_set1_pd(x);
            let rv = _mm256_set_pd(r[3][d], r[2][d], r[1][d], r[0][d]);
            let diff = _mm256_sub_pd(qv, rv);
            acc = match kind {
                KernelMetric::Euclidean => _mm256_add_pd(acc, _mm256_mul_pd(diff, diff)),
                KernelMetric::Manhattan => _mm256_add_pd(acc, _mm256_andnot_pd(sign, diff)),
                KernelMetric::Chebyshev => _mm256_max_pd(acc, _mm256_andnot_pd(sign, diff)),
            };
        }
        let mut res = [0.0f64; 4];
        _mm256_storeu_pd(res.as_mut_ptr(), acc);
        res
    }

    /// Two points per iteration.
    ///
    /// # Safety
    ///
    /// Caller must have verified SSE2 support (always true on `x86_64`,
    /// detection-checked anyway); all rows must have `q.len()` elements.
    #[target_feature(enable = "sse2")]
    unsafe fn cmp2_sse2(kind: KernelMetric, q: &[f64], r: [&[f64]; 2]) -> [f64; 2] {
        let sign = _mm_set1_pd(-0.0);
        let mut acc = _mm_setzero_pd();
        for (d, &x) in q.iter().enumerate() {
            let qv = _mm_set1_pd(x);
            let rv = _mm_set_pd(r[1][d], r[0][d]);
            let diff = _mm_sub_pd(qv, rv);
            acc = match kind {
                KernelMetric::Euclidean => _mm_add_pd(acc, _mm_mul_pd(diff, diff)),
                KernelMetric::Manhattan => _mm_add_pd(acc, _mm_andnot_pd(sign, diff)),
                KernelMetric::Chebyshev => _mm_max_pd(acc, _mm_andnot_pd(sign, diff)),
            };
        }
        let mut res = [0.0f64; 2];
        _mm_storeu_pd(res.as_mut_ptr(), acc);
        res
    }

    /// Four points per iteration, cosine-angular chain: per-lane `dot`
    /// and `nb` accumulators (multiply + add, no FMA), the query's
    /// self-dot `na` pre-accumulated scalar by the dispatcher, epilogue
    /// scalar per lane.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX support; all rows must have `q.len()`
    /// elements.
    #[target_feature(enable = "avx")]
    unsafe fn cosine4_avx(q: &[f64], r: [&[f64]; 4], na: f64) -> [f64; 4] {
        let mut dot = _mm256_setzero_pd();
        let mut nb = _mm256_setzero_pd();
        for (d, &x) in q.iter().enumerate() {
            let qv = _mm256_set1_pd(x);
            let rv = _mm256_set_pd(r[3][d], r[2][d], r[1][d], r[0][d]);
            dot = _mm256_add_pd(dot, _mm256_mul_pd(qv, rv));
            nb = _mm256_add_pd(nb, _mm256_mul_pd(rv, rv));
        }
        let mut dots = [0.0f64; 4];
        let mut nbs = [0.0f64; 4];
        _mm256_storeu_pd(dots.as_mut_ptr(), dot);
        _mm256_storeu_pd(nbs.as_mut_ptr(), nb);
        [
            cosine_finish(dots[0], na, nbs[0]),
            cosine_finish(dots[1], na, nbs[1]),
            cosine_finish(dots[2], na, nbs[2]),
            cosine_finish(dots[3], na, nbs[3]),
        ]
    }

    /// Two points per iteration, cosine-angular chain.
    ///
    /// # Safety
    ///
    /// Caller must have verified SSE2 support; all rows must have `q.len()`
    /// elements.
    #[target_feature(enable = "sse2")]
    unsafe fn cosine2_sse2(q: &[f64], r: [&[f64]; 2], na: f64) -> [f64; 2] {
        let mut dot = _mm_setzero_pd();
        let mut nb = _mm_setzero_pd();
        for (d, &x) in q.iter().enumerate() {
            let qv = _mm_set1_pd(x);
            let rv = _mm_set_pd(r[1][d], r[0][d]);
            dot = _mm_add_pd(dot, _mm_mul_pd(qv, rv));
            nb = _mm_add_pd(nb, _mm_mul_pd(rv, rv));
        }
        let mut dots = [0.0f64; 2];
        let mut nbs = [0.0f64; 2];
        _mm_storeu_pd(dots.as_mut_ptr(), dot);
        _mm_storeu_pd(nbs.as_mut_ptr(), nb);
        [
            cosine_finish(dots[0], na, nbs[0]),
            cosine_finish(dots[1], na, nbs[1]),
        ]
    }

    /// The query's self-dot, accumulated in the exact op sequence the
    /// scalar kernel uses (`na += x * x` per dimension) — computed once
    /// and shared by every lane, since it depends on the query alone.
    fn query_self_dot(q: &[f64]) -> f64 {
        let mut na = 0.0;
        for &x in q {
            na += x * x;
        }
        na
    }

    pub(super) fn cosine_block_avx<P: Coordinates>(query: &[f64], block: &[P], out: &mut [f64]) {
        let na = query_self_dot(query);
        let mut groups = block.chunks_exact(4);
        let mut outs = out.chunks_exact_mut(4);
        for (g, o) in groups.by_ref().zip(outs.by_ref()) {
            // SAFETY: dispatch verified AVX; `Coordinates` rows share the
            // query's dimension per the point-set invariants.
            let res = unsafe {
                cosine4_avx(
                    query,
                    [g[0].coords(), g[1].coords(), g[2].coords(), g[3].coords()],
                    na,
                )
            };
            o.copy_from_slice(&res);
        }
        for (o, p) in outs.into_remainder().iter_mut().zip(groups.remainder()) {
            *o = scalar_cosine(query, p.coords());
        }
    }

    pub(super) fn cosine_block_sse2<P: Coordinates>(query: &[f64], block: &[P], out: &mut [f64]) {
        let na = query_self_dot(query);
        let mut groups = block.chunks_exact(2);
        let mut outs = out.chunks_exact_mut(2);
        for (g, o) in groups.by_ref().zip(outs.by_ref()) {
            // SAFETY: SSE2 is baseline on x86_64 and detection-checked.
            let res = unsafe { cosine2_sse2(query, [g[0].coords(), g[1].coords()], na) };
            o.copy_from_slice(&res);
        }
        for (o, p) in outs.into_remainder().iter_mut().zip(groups.remainder()) {
            *o = scalar_cosine(query, p.coords());
        }
    }

    pub(super) fn cmp_block_avx<P: Coordinates>(
        kind: KernelMetric,
        query: &[f64],
        block: &[P],
        out: &mut [f64],
    ) {
        let mut groups = block.chunks_exact(4);
        let mut outs = out.chunks_exact_mut(4);
        for (g, o) in groups.by_ref().zip(outs.by_ref()) {
            // SAFETY: dispatch verified AVX; `Coordinates` rows share the
            // query's dimension per the point-set invariants.
            let res = unsafe {
                cmp4_avx(
                    kind,
                    query,
                    [g[0].coords(), g[1].coords(), g[2].coords(), g[3].coords()],
                )
            };
            o.copy_from_slice(&res);
        }
        for (o, p) in outs.into_remainder().iter_mut().zip(groups.remainder()) {
            *o = scalar_cmp(kind, query, p.coords());
        }
    }

    pub(super) fn cmp_block_sse2<P: Coordinates>(
        kind: KernelMetric,
        query: &[f64],
        block: &[P],
        out: &mut [f64],
    ) {
        let mut groups = block.chunks_exact(2);
        let mut outs = out.chunks_exact_mut(2);
        for (g, o) in groups.by_ref().zip(outs.by_ref()) {
            // SAFETY: SSE2 is baseline on x86_64 and detection-checked.
            let res = unsafe { cmp2_sse2(kind, query, [g[0].coords(), g[1].coords()]) };
            o.copy_from_slice(&res);
        }
        for (o, p) in outs.into_remainder().iter_mut().zip(groups.remainder()) {
            *o = scalar_cmp(kind, query, p.coords());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn pts(rows: &[&[f64]]) -> Vec<Point> {
        rows.iter().map(|r| Point::new(r.to_vec())).collect()
    }

    const KINDS: [KernelMetric; 3] = [
        KernelMetric::Euclidean,
        KernelMetric::Manhattan,
        KernelMetric::Chebyshev,
    ];

    #[test]
    fn dispatched_kernels_match_scalar_bitwise() {
        // Odd block length exercises the remainder lanes on every ISA.
        let block = pts(&[
            &[1.0, 2.0, 3.0],
            &[-1.5, 0.25, 9.0],
            &[0.0, -0.0, 1e-300],
            &[7.0, 7.0, 7.0],
            &[2.5, -3.5, 4.5],
            &[1.0, 2.0, 3.0],
            &[-8.0, 1e12, -1e-12],
        ]);
        let query = [0.5, -2.0, 3.25];
        for kind in KINDS {
            let mut auto = vec![0.0; block.len()];
            let mut scalar = vec![0.0; block.len()];
            cmp_block(kind, &query, &block, &mut auto);
            cmp_block_scalar(kind, &query, &block, &mut scalar);
            for (a, s) in auto.iter().zip(&scalar) {
                assert_eq!(a.to_bits(), s.to_bits(), "{kind:?}");
            }
        }
    }

    #[test]
    fn dispatched_cosine_kernel_matches_scalar_bitwise() {
        // Odd block length exercises the remainder lanes on every ISA;
        // zero rows exercise the per-lane boundary epilogue.
        let block = pts(&[
            &[1.0, 2.0, 3.0],
            &[0.0, 0.0, 0.0],
            &[-1.5, 0.25, 9.0],
            &[1.0, 2.0, 3.0],
            &[-2.0, -4.0, -6.0],
            &[1e-300, -1e150, 2.5],
            &[0.5, -2.0, 3.25],
        ]);
        for query in [[0.5, -2.0, 3.25], [0.0, 0.0, 0.0]] {
            let mut auto = vec![0.0; block.len()];
            let mut scalar = vec![0.0; block.len()];
            cosine_block(&query, &block, &mut auto);
            cosine_block_scalar(&query, &block, &mut scalar);
            for (i, (a, s)) in auto.iter().zip(&scalar).enumerate() {
                assert_eq!(a.to_bits(), s.to_bits(), "point {i} query {query:?}");
            }
        }
    }

    #[test]
    fn force_scalar_pins_the_isa() {
        let was = force_scalar();
        set_force_scalar(true);
        assert_eq!(active_isa(), Isa::Scalar);
        set_force_scalar(was);
        // Detection is stable within a process.
        assert_eq!(active_isa(), active_isa());
    }

    #[test]
    fn within_block_matches_exact_compare() {
        let block = pts(&[
            &[0.0, 0.0],
            &[3.0, 4.0],
            &[1.0, 1.0],
            &[5.0, 12.0],
            &[3.0, 4.0],
        ]);
        let query = [0.0, 0.0];
        for kind in KINDS {
            let mut cmps = vec![0.0; block.len()];
            cmp_block_scalar(kind, &query, &block, &mut cmps);
            // Thresholds at, below, and above exact values.
            for &t in &[
                cmps[1],
                cmps[1] * 0.999,
                cmps[1] * 1.001,
                0.0,
                f64::INFINITY,
            ] {
                let mut flags = vec![false; block.len()];
                within_block(kind, &query, &block, t, &mut flags);
                for (f, &c) in flags.iter().zip(&cmps) {
                    assert_eq!(*f, c <= t, "{kind:?} t={t}");
                }
            }
        }
    }

    #[test]
    fn f32_proxy_decisions_are_identical() {
        let block = pts(&[
            &[0.1, 0.2, 0.30000000000000004],
            &[1e8, -1e8, 5e7],
            &[1e-40, -1e-40, 0.0], // subnormal in f32
            &[0.1, 0.2, 0.3],
            &[123.456, -654.321, 0.001],
        ]);
        let query = [0.1, 0.2, 0.3];
        let mut cmps = vec![0.0; block.len()];
        for kind in KINDS {
            cmp_block_scalar(kind, &query, &block, &mut cmps);
            let mut thresholds: Vec<f64> = cmps.clone();
            thresholds.extend(cmps.iter().map(|c| c * (1.0 + 1e-12)));
            thresholds.extend(cmps.iter().map(|c| c * (1.0 - 1e-12)));
            thresholds.push(0.0);
            for &t in &thresholds {
                let mut exact = vec![false; block.len()];
                within_block(kind, &query, &block, t, &mut exact);
                set_f32_proxy(true);
                let mut proxied = vec![false; block.len()];
                within_block(kind, &query, &block, t, &mut proxied);
                set_f32_proxy(false);
                assert_eq!(exact, proxied, "{kind:?} t={t}");
            }
        }
    }

    #[test]
    fn f32_proxy_survives_f32_overflow() {
        // 1e300 overflows to inf in f32: the proxy must fall back to the
        // exact kernel rather than mis-classify.
        let block = pts(&[&[1e300], &[-1e300], &[0.0]]);
        let query = [1e300];
        for kind in KINDS {
            let mut cmps = vec![0.0; block.len()];
            cmp_block_scalar(kind, &query, &block, &mut cmps);
            let t = cmps[2];
            let mut exact = vec![false; block.len()];
            within_block(kind, &query, &block, t, &mut exact);
            set_f32_proxy(true);
            let mut proxied = vec![false; block.len()];
            within_block(kind, &query, &block, t, &mut proxied);
            set_f32_proxy(false);
            assert_eq!(exact, proxied, "{kind:?}");
        }
    }

    #[test]
    #[should_panic(expected = "output length mismatch")]
    fn cmp_block_rejects_length_mismatch() {
        let block = pts(&[&[1.0]]);
        let mut out = [0.0; 2];
        cmp_block(KernelMetric::Euclidean, &[0.0], &block, &mut out);
    }
}
