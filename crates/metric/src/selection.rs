//! Order-statistic selection over distances.
//!
//! The k-center-with-outliers objective is the `(z+1)`-th largest distance to
//! the center set. Evaluating it by sorting costs `O(n log n)`; these helpers
//! use `select_nth_unstable` (introselect) for expected `O(n)`.
//!
//! The paper cites the Munro–Paterson streaming selection algorithm to locate
//! candidate radii without materializing all `O(|T|^2)` pairwise distances.
//! Our radius search (see `kcenter-core::radius_search`) instead binary
//! searches a geometric grid, which needs only the extreme order statistics
//! computed here; for the exact-candidates mode on small coresets the full
//! selection below is used. Both achieve the same `(1+δ)` tolerance with
//! `O(|T|)` working memory.

/// Returns the `k`-th smallest value (0-based) of `values`, reordering the
/// slice in place.
///
/// # Panics
///
/// Panics if `values` is empty or `k >= values.len()`.
pub fn kth_smallest(values: &mut [f64], k: usize) -> f64 {
    assert!(!values.is_empty(), "selection over empty slice");
    assert!(k < values.len(), "k = {k} out of bounds {}", values.len());
    let (_, kth, _) = values.select_nth_unstable_by(k, |a, b| {
        a.partial_cmp(b).expect("distances must not be NaN")
    });
    *kth
}

/// Returns the `k`-th largest value (0-based) of `values`, reordering the
/// slice in place. `kth_largest(v, 0)` is the maximum.
pub fn kth_largest(values: &mut [f64], k: usize) -> f64 {
    let n = values.len();
    assert!(k < n, "k = {k} out of bounds {n}");
    kth_smallest(values, n - 1 - k)
}

/// The k-center-with-outliers objective: the maximum of `distances` after
/// discarding the `z` largest values.
///
/// With `z = 0` this is the plain radius; with `z >= distances.len()` the
/// objective is `0` (every point may be discarded).
pub fn radius_excluding_outliers(distances: &mut [f64], z: usize) -> f64 {
    if distances.len() <= z {
        return 0.0;
    }
    kth_largest(distances, z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kth_smallest_selects_correctly() {
        let mut v = vec![5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(kth_smallest(&mut v.clone(), 0), 1.0);
        assert_eq!(kth_smallest(&mut v.clone(), 2), 3.0);
        assert_eq!(kth_smallest(&mut v, 4), 5.0);
    }

    #[test]
    fn kth_largest_mirrors_kth_smallest() {
        let mut v = vec![5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(kth_largest(&mut v.clone(), 0), 5.0);
        assert_eq!(kth_largest(&mut v, 1), 4.0);
    }

    #[test]
    fn radius_with_zero_outliers_is_max() {
        let mut v = vec![1.0, 7.0, 3.0];
        assert_eq!(radius_excluding_outliers(&mut v, 0), 7.0);
    }

    #[test]
    fn radius_discards_largest() {
        let mut v = vec![1.0, 7.0, 3.0, 9.0];
        assert_eq!(radius_excluding_outliers(&mut v, 2), 3.0);
    }

    #[test]
    fn radius_with_all_outliers_is_zero() {
        let mut v = vec![1.0, 7.0];
        assert_eq!(radius_excluding_outliers(&mut v, 2), 0.0);
        assert_eq!(radius_excluding_outliers(&mut v, 5), 0.0);
        assert_eq!(radius_excluding_outliers(&mut [], 0), 0.0);
    }

    #[test]
    fn duplicates_are_handled() {
        let mut v = vec![2.0, 2.0, 2.0, 2.0];
        assert_eq!(radius_excluding_outliers(&mut v, 2), 2.0);
    }

    #[test]
    #[should_panic(expected = "selection over empty slice")]
    fn empty_selection_panics() {
        let _ = kth_smallest(&mut [], 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_k_panics() {
        let _ = kth_smallest(&mut [1.0], 1);
    }
}
