//! Deterministic 128-bit fingerprints for cache keys and checksums.
//!
//! The persistent artifact store (`kcenter-store`) addresses entries by a
//! fingerprint of their *inputs* — point coordinates, metric identity,
//! dataset/coreset parameters — so that two runs deriving the same artifact
//! read one cache entry, and any parameter change lands on a different key.
//! The hash therefore has to be
//!
//! * **deterministic across processes and platforms** (no `RandomState`,
//!   no pointer-derived seeds): coordinates are folded in as little-endian
//!   `f64::to_bits`, integers as little-endian fixed-width words;
//! * **order-sensitive**: matrix entries are indexed by point position, so
//!   `[a, b]` and `[b, a]` must fingerprint differently;
//! * cheap relative to the work it saves (an `O(n·d)` pass versus the
//!   `O(n²·d)` pricing of a distance matrix).
//!
//! Collision resistance is the cache-grade kind, not the cryptographic
//! kind: two independently seeded 64-bit FNV-1a lanes over the same byte
//! stream, each finished with a SplitMix64 avalanche, give 128 bits that
//! are more than enough for millions of distinct artifacts. Do not use
//! this for security decisions.

/// Streaming 128-bit fingerprint builder (two independent FNV-1a lanes).
#[derive(Clone, Debug)]
pub struct Fingerprint {
    lane_a: u64,
    lane_b: u64,
    len: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
/// Standard FNV-1a 64-bit offset basis.
const OFFSET_A: u64 = 0xCBF2_9CE4_8422_2325;
/// Second lane: an arbitrary odd constant (golden-ratio based) so the two
/// lanes traverse different trajectories over identical input.
const OFFSET_B: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: avalanches the accumulated lane state so nearby
/// inputs do not produce nearby fingerprints.
#[inline]
fn avalanche(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// A fresh fingerprint builder.
    pub fn new() -> Self {
        Fingerprint {
            lane_a: OFFSET_A,
            lane_b: OFFSET_B,
            len: 0,
        }
    }

    /// A builder seeded with a domain label, so fingerprints of different
    /// artifact families (matrices, coresets, solutions, …) cannot collide
    /// by folding in identical payloads.
    pub fn with_domain(domain: &str) -> Self {
        let mut fp = Fingerprint::new();
        fp.write_str(domain);
        fp
    }

    /// Folds raw bytes into the fingerprint.
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lane_a = (self.lane_a ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            self.lane_b = (self.lane_b ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            // Decorrelate the lanes: lane B additionally mixes the running
            // length, so the lanes disagree on all but the empty stream.
            self.lane_b ^= self.len.rotate_left(17);
            self.len = self.len.wrapping_add(1);
        }
    }

    /// Folds a `u64` (little-endian).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `usize` as a 64-bit word (platform-independent width).
    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds an `f64` by bit pattern — bit-exact, so `-0.0` and `0.0` (or
    /// two NaN payloads) fingerprint differently, matching the bitwise
    /// round-trip guarantee of the store's codec.
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a string with a length prefix (so `"ab" + "c"` and
    /// `"a" + "bc"` differ).
    #[inline]
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Folds a slice of `f64` coordinates with a length prefix.
    #[inline]
    pub fn write_f64s(&mut self, vs: &[f64]) {
        self.write_usize(vs.len());
        for &v in vs {
            self.write_f64(v);
        }
    }

    /// The 128-bit fingerprint of everything written so far.
    pub fn finish(&self) -> u128 {
        let hi = avalanche(self.lane_a ^ self.len.rotate_left(32));
        let lo = avalanche(self.lane_b.wrapping_add(self.len));
        (u128::from(hi) << 64) | u128::from(lo)
    }
}

/// One-shot FNV-1a 64-bit hash, used by the store's codec as a payload
/// checksum (a single lane is plenty for corruption detection).
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = OFFSET_A;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    avalanche(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_builders() {
        let mut a = Fingerprint::with_domain("test");
        let mut b = Fingerprint::with_domain("test");
        for fp in [&mut a, &mut b] {
            fp.write_f64s(&[1.0, -0.0, 3.5]);
            fp.write_u64(42);
            fp.write_str("euclidean");
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn order_and_domain_sensitive() {
        let mut a = Fingerprint::with_domain("d");
        a.write_f64s(&[1.0, 2.0]);
        let mut b = Fingerprint::with_domain("d");
        b.write_f64s(&[2.0, 1.0]);
        assert_ne!(a.finish(), b.finish());

        let mut c = Fingerprint::with_domain("other");
        c.write_f64s(&[1.0, 2.0]);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn bit_exact_on_signed_zero_and_nan() {
        let mut pos = Fingerprint::new();
        pos.write_f64(0.0);
        let mut neg = Fingerprint::new();
        neg.write_f64(-0.0);
        assert_ne!(pos.finish(), neg.finish());
    }

    #[test]
    fn length_prefix_separates_concatenations() {
        let mut a = Fingerprint::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fingerprint::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn lanes_are_not_mirrors() {
        // The two 64-bit halves must not be equal functions of the input.
        let mut fp = Fingerprint::new();
        fp.write_u64(7);
        let v = fp.finish();
        assert_ne!((v >> 64) as u64, v as u64);
    }

    #[test]
    fn checksum_detects_flips() {
        let data = b"hello world, this is a payload";
        let base = checksum64(data);
        let mut flipped = data.to_vec();
        flipped[3] ^= 0x40;
        assert_ne!(base, checksum64(&flipped));
        assert_eq!(base, checksum64(data));
    }
}
