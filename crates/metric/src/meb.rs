//! Approximate Minimum Enclosing Ball (MEB) for Euclidean point sets.
//!
//! The paper's outlier-injection procedure (§5.2) needs the MEB of a dataset:
//! outliers are planted at distance `100 · r_MEB` from the MEB center in
//! random directions. We implement the Badoiu–Clarkson subgradient iteration:
//! starting from an arbitrary point, repeatedly move the candidate center a
//! `1/(i+1)` step towards the current farthest point. After `⌈1/ε²⌉`
//! iterations the ball of radius `max distance` around the candidate center
//! is a `(1+ε)`-approximation of the MEB.
//!
//! The farthest-point scan is rayon-parallel; each iteration is `O(n·d)`.

use rayon::prelude::*;

use crate::distance::{Euclidean, Metric};
use crate::point::Point;

/// A ball in `R^d`: a center (not necessarily a dataset point) and a radius
/// covering every input point.
#[derive(Clone, Debug, PartialEq)]
pub struct Ball {
    /// The ball center.
    pub center: Point,
    /// The covering radius.
    pub radius: f64,
}

impl Ball {
    /// Whether `point` lies inside the ball (within `tol` slack).
    pub fn contains(&self, point: &Point, tol: f64) -> bool {
        Euclidean.distance(&self.center, point) <= self.radius + tol
    }
}

/// Computes a `(1+eps)`-approximate minimum enclosing ball of `points` using
/// Badoiu–Clarkson iteration (`⌈1/eps²⌉` passes over the data).
///
/// # Panics
///
/// Panics if `points` is empty or `eps` is not in `(0, 1]`.
pub fn minimum_enclosing_ball(points: &[Point], eps: f64) -> Ball {
    assert!(!points.is_empty(), "MEB of empty set is undefined");
    assert!(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1]");

    let iterations = (1.0 / (eps * eps)).ceil() as usize;
    let dim = points[0].dim();
    let mut center: Vec<f64> = points[0].coords().to_vec();

    for i in 1..=iterations {
        let (far_idx, _far_d2) = farthest_from(points, &center);
        let far = points[far_idx].coords();
        let step = 1.0 / (i as f64 + 1.0);
        for (c, f) in center.iter_mut().zip(far) {
            *c += step * (f - *c);
        }
        debug_assert_eq!(center.len(), dim);
    }

    let (_, max_d2) = farthest_from(points, &center);
    Ball {
        center: Point::new(center),
        radius: max_d2.sqrt(),
    }
}

/// Index and squared distance of the point farthest from `center`.
fn farthest_from(points: &[Point], center: &[f64]) -> (usize, f64) {
    points
        .par_iter()
        .enumerate()
        .map(|(i, p)| {
            let d2: f64 = p
                .coords()
                .iter()
                .zip(center)
                .map(|(x, c)| {
                    let d = x - c;
                    d * d
                })
                .sum();
            (i, d2)
        })
        .reduce(
            || (0, f64::NEG_INFINITY),
            |a, b| if a.1 >= b.1 { a } else { b },
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(coords: &[f64]) -> Point {
        Point::new(coords.to_vec())
    }

    #[test]
    fn single_point_ball_has_zero_radius() {
        let ball = minimum_enclosing_ball(&[p(&[3.0, 4.0])], 0.1);
        assert_eq!(ball.radius, 0.0);
        assert_eq!(ball.center, p(&[3.0, 4.0]));
    }

    #[test]
    fn covers_all_points() {
        let pts: Vec<Point> = (0..50)
            .map(|i| p(&[(i % 10) as f64, (i / 10) as f64]))
            .collect();
        let ball = minimum_enclosing_ball(&pts, 0.1);
        for q in &pts {
            assert!(ball.contains(q, 1e-9), "point {q:?} outside ball");
        }
    }

    #[test]
    fn near_optimal_on_symmetric_pair() {
        // The optimal MEB of {-1, +1} on a line is centered at 0 with radius 1.
        let pts = vec![p(&[-1.0]), p(&[1.0])];
        let ball = minimum_enclosing_ball(&pts, 0.05);
        assert!(ball.radius <= 1.0 * 1.1, "radius {} too large", ball.radius);
        assert!(ball.radius >= 1.0 - 1e-9, "ball must cover both endpoints");
    }

    #[test]
    fn near_optimal_on_circle() {
        // Points on a unit circle: optimal radius 1 around the origin.
        let pts: Vec<Point> = (0..64)
            .map(|i| {
                let t = i as f64 / 64.0 * std::f64::consts::TAU;
                p(&[t.cos(), t.sin()])
            })
            .collect();
        let ball = minimum_enclosing_ball(&pts, 0.05);
        assert!(ball.radius <= 1.12, "radius {} too large", ball.radius);
        assert!(
            ball.center.norm() < 0.15,
            "center {:?} far from origin",
            ball.center
        );
    }

    #[test]
    #[should_panic(expected = "MEB of empty set")]
    fn empty_set_panics() {
        let _ = minimum_enclosing_ball(&[], 0.1);
    }

    #[test]
    #[should_panic(expected = "eps must be in")]
    fn bad_eps_panics() {
        let _ = minimum_enclosing_ball(&[p(&[0.0])], 0.0);
    }
}
