//! Distance functions.
//!
//! The [`Metric`] trait is the single abstraction every clustering algorithm
//! in the workspace is generic over. Implementations must satisfy the metric
//! axioms (non-negativity, identity of indiscernibles, symmetry, triangle
//! inequality); the approximation guarantees of all algorithms rely on the
//! triangle inequality.

use crate::fingerprint::Fingerprint;
use crate::kernels::{self, KernelMetric};
use crate::pointset::Coordinates;

/// Domain label folded into every [`Metric::cache_fingerprint`], bumped
/// whenever the fingerprinting scheme itself changes incompatibly.
const FINGERPRINT_DOMAIN: &str = "kcenter/metric-points/v1";

/// Content fingerprint of `points` under a named metric: the key the
/// persistent artifact store addresses proxy-scale distance matrices by.
/// Order-sensitive (matrix entries are indexed by point position) and
/// bit-exact over coordinates. Generic over [`Coordinates`], writing the
/// same bytes for a `Point` slice and its [`crate::PointSet`] view — so
/// owned and zero-copy loads of the same data share cache entries.
fn fingerprint_points<P: Coordinates>(metric_name: &str, points: &[P]) -> u128 {
    let mut fp = Fingerprint::with_domain(FINGERPRINT_DOMAIN);
    fp.write_str(metric_name);
    fp.write_usize(points.len());
    for p in points {
        fp.write_f64s(p.coords());
    }
    fp.finish()
}

/// A distance function over points of type `P`.
///
/// Implementations must be proper metrics: the k-center approximation bounds
/// (Gonzalez' 2-approximation, Charikar et al.'s 3-approximation, and all the
/// coreset arguments built on them) are triangle-inequality arguments.
///
/// The `Sync + Send` bounds allow distance evaluation from rayon worker
/// threads in the MapReduce simulator and the parallel kernels.
pub trait Metric<P: ?Sized>: Sync + Send {
    /// The distance `d(a, b) >= 0`.
    fn distance(&self, a: &P, b: &P) -> f64;

    /// A *comparison proxy* for the distance: any value order-isomorphic to
    /// `distance(a, b)` (strictly monotone, zero iff the distance is zero).
    ///
    /// Nearest-center and farthest-point scans — the `O(n·τ)` / `O(|T|²)`
    /// kernels of every algorithm here — only ever *compare* distances;
    /// they call this instead of [`Metric::distance`] and convert one final
    /// value at the boundary with [`Metric::cmp_to_distance`]. The default
    /// is the distance itself; [`Euclidean`] returns the **squared**
    /// distance, eliding one `sqrt` per evaluation.
    ///
    /// Contract: `cmp_to_distance(cmp_distance(a, b))` must equal
    /// `distance(a, b)` exactly, and `cmp_distance` must preserve the
    /// order of `distance` (ties included, up to the proxy being *more*
    /// discriminating than the rounded true distance).
    #[inline]
    fn cmp_distance(&self, a: &P, b: &P) -> f64 {
        self.distance(a, b)
    }

    /// Converts a [`Metric::cmp_distance`] value back to a true distance
    /// (the one `sqrt` at the reporting boundary). Default: identity.
    #[inline]
    fn cmp_to_distance(&self, cmp: f64) -> f64 {
        cmp
    }

    /// Converts a true distance/radius to the [`Metric::cmp_distance`]
    /// scale, for threshold tests (`d(a, b) <= r` becomes
    /// `cmp_distance(a, b) <= distance_to_cmp(r)`). Default: identity.
    ///
    /// Threshold tests on the proxy scale may disagree with tests on the
    /// rounded true distance within one ulp of the boundary; algorithms
    /// must apply one rule consistently (as the paired implementations in
    /// this workspace do).
    #[inline]
    fn distance_to_cmp(&self, d: f64) -> f64 {
        d
    }

    /// Batched [`Metric::cmp_distance`]: writes `cmp_distance(query,
    /// block[i])` into `out[i]` for every point of `block`.
    ///
    /// The default loops the scalar method; the coordinate metrics
    /// override it with the runtime-dispatched SIMD kernels of
    /// [`crate::kernels`]. Overrides must stay **bit-identical** to the
    /// default — callers (GMM scans, matrix builds, ball-weight passes)
    /// rely on block and scalar paths being interchangeable at every
    /// thread count.
    fn cmp_distance_block(&self, query: &P, block: &[P], out: &mut [f64])
    where
        P: Sized,
    {
        for (o, b) in out.iter_mut().zip(block) {
            *o = self.cmp_distance(query, b);
        }
    }

    /// Batched [`Metric::distance`]: writes `distance(query, block[i])`
    /// into `out[i]`. Same bit-identity contract as
    /// [`Metric::cmp_distance_block`].
    fn distance_to_block(&self, query: &P, block: &[P], out: &mut [f64])
    where
        P: Sized,
    {
        for (o, b) in out.iter_mut().zip(block) {
            *o = self.distance(query, b);
        }
    }

    /// Batched ball-membership test on the proxy scale: writes
    /// `cmp_distance(query, block[i]) <= cmp_threshold` into `out[i]`.
    ///
    /// Overrides may evaluate a cheaper proxy first (the opt-in f32 mode)
    /// but must make the **identical decision** the exact comparison
    /// makes for every point — uncertain cases re-verified exactly.
    fn within_block(&self, query: &P, block: &[P], cmp_threshold: f64, out: &mut [bool])
    where
        P: Sized,
    {
        for (o, b) in out.iter_mut().zip(block) {
            *o = self.cmp_distance(query, b) <= cmp_threshold;
        }
    }

    /// A deterministic content fingerprint of `points` *under this metric*,
    /// or `None` when the metric cannot (or should not) key a persistent
    /// cache entry.
    ///
    /// `Some(fp)` is a promise that any two point slices with the same
    /// fingerprint produce bitwise-identical [`Metric::cmp_distance`]
    /// matrices, across processes: the persistent artifact store uses it
    /// to serve a previously priced matrix to a later run. Implementations
    /// must therefore fold in a stable metric identity and the exact
    /// coordinate bits, in order. The default `None` opts out — correct
    /// for stateful or test-only metrics (e.g. [`Precomputed`], whose
    /// identity lives in the matrix itself) and for ad-hoc wrappers, which
    /// then simply keep the per-process cache behaviour.
    fn cache_fingerprint(&self, points: &[P]) -> Option<u128>
    where
        P: Sized,
    {
        let _ = points;
        None
    }
}

/// Blanket implementation so `&M` can be passed where `M: Metric` is needed.
impl<P: ?Sized, M: Metric<P> + ?Sized> Metric<P> for &M {
    #[inline]
    fn distance(&self, a: &P, b: &P) -> f64 {
        (**self).distance(a, b)
    }

    #[inline]
    fn cmp_distance(&self, a: &P, b: &P) -> f64 {
        (**self).cmp_distance(a, b)
    }

    #[inline]
    fn cmp_to_distance(&self, cmp: f64) -> f64 {
        (**self).cmp_to_distance(cmp)
    }

    #[inline]
    fn distance_to_cmp(&self, d: f64) -> f64 {
        (**self).distance_to_cmp(d)
    }

    #[inline]
    fn cmp_distance_block(&self, query: &P, block: &[P], out: &mut [f64])
    where
        P: Sized,
    {
        (**self).cmp_distance_block(query, block, out)
    }

    #[inline]
    fn distance_to_block(&self, query: &P, block: &[P], out: &mut [f64])
    where
        P: Sized,
    {
        (**self).distance_to_block(query, block, out)
    }

    #[inline]
    fn within_block(&self, query: &P, block: &[P], cmp_threshold: f64, out: &mut [bool])
    where
        P: Sized,
    {
        (**self).within_block(query, block, cmp_threshold, out)
    }

    fn cache_fingerprint(&self, points: &[P]) -> Option<u128>
    where
        P: Sized,
    {
        (**self).cache_fingerprint(points)
    }
}

/// The Euclidean (L2) metric — the distance used by all of the paper's
/// experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Euclidean;

impl Euclidean {
    /// Squared Euclidean distance; cheaper than [`Metric::distance`] when only
    /// comparisons are needed (monotone in the true distance).
    #[inline]
    pub fn distance_squared<P: Coordinates>(&self, a: &P, b: &P) -> f64 {
        debug_assert_eq!(a.dim(), b.dim(), "dimension mismatch");
        a.coords()
            .iter()
            .zip(b.coords())
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }
}

impl<P: Coordinates> Metric<P> for Euclidean {
    #[inline]
    fn distance(&self, a: &P, b: &P) -> f64 {
        self.distance_squared(a, b).sqrt()
    }

    // The proxy is the squared distance: `distance` is *defined* as
    // `sqrt(distance_squared)`, so `cmp_to_distance(cmp_distance(a, b))`
    // reproduces `distance(a, b)` bit-for-bit, and `sqrt`'s monotonicity
    // makes the square order-isomorphic to the true distance.
    #[inline]
    fn cmp_distance(&self, a: &P, b: &P) -> f64 {
        self.distance_squared(a, b)
    }

    #[inline]
    fn cmp_to_distance(&self, cmp: f64) -> f64 {
        cmp.sqrt()
    }

    #[inline]
    fn distance_to_cmp(&self, d: f64) -> f64 {
        d * d
    }

    #[inline]
    fn cmp_distance_block(&self, query: &P, block: &[P], out: &mut [f64]) {
        kernels::cmp_block(KernelMetric::Euclidean, query.coords(), block, out);
    }

    // `distance` is *defined* as `sqrt(distance_squared)`, so squaring
    // the block kernel's proxies through `sqrt` reproduces the scalar
    // distances bit for bit.
    #[inline]
    fn distance_to_block(&self, query: &P, block: &[P], out: &mut [f64]) {
        kernels::cmp_block(KernelMetric::Euclidean, query.coords(), block, out);
        for v in out.iter_mut() {
            *v = v.sqrt();
        }
    }

    #[inline]
    fn within_block(&self, query: &P, block: &[P], cmp_threshold: f64, out: &mut [bool]) {
        kernels::within_block(
            KernelMetric::Euclidean,
            query.coords(),
            block,
            cmp_threshold,
            out,
        );
    }

    fn cache_fingerprint(&self, points: &[P]) -> Option<u128> {
        Some(fingerprint_points("euclidean", points))
    }
}

/// The Manhattan (L1) metric.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Manhattan;

impl<P: Coordinates> Metric<P> for Manhattan {
    #[inline]
    fn distance(&self, a: &P, b: &P) -> f64 {
        debug_assert_eq!(a.dim(), b.dim(), "dimension mismatch");
        a.coords()
            .iter()
            .zip(b.coords())
            .map(|(x, y)| (x - y).abs())
            .sum()
    }

    #[inline]
    fn cmp_distance_block(&self, query: &P, block: &[P], out: &mut [f64]) {
        kernels::cmp_block(KernelMetric::Manhattan, query.coords(), block, out);
    }

    #[inline]
    fn distance_to_block(&self, query: &P, block: &[P], out: &mut [f64]) {
        // cmp is the distance itself (identity proxy).
        kernels::cmp_block(KernelMetric::Manhattan, query.coords(), block, out);
    }

    #[inline]
    fn within_block(&self, query: &P, block: &[P], cmp_threshold: f64, out: &mut [bool]) {
        kernels::within_block(
            KernelMetric::Manhattan,
            query.coords(),
            block,
            cmp_threshold,
            out,
        );
    }

    fn cache_fingerprint(&self, points: &[P]) -> Option<u128> {
        Some(fingerprint_points("manhattan", points))
    }
}

/// The Chebyshev (L∞) metric.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Chebyshev;

impl<P: Coordinates> Metric<P> for Chebyshev {
    #[inline]
    fn distance(&self, a: &P, b: &P) -> f64 {
        debug_assert_eq!(a.dim(), b.dim(), "dimension mismatch");
        a.coords()
            .iter()
            .zip(b.coords())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[inline]
    fn cmp_distance_block(&self, query: &P, block: &[P], out: &mut [f64]) {
        kernels::cmp_block(KernelMetric::Chebyshev, query.coords(), block, out);
    }

    #[inline]
    fn distance_to_block(&self, query: &P, block: &[P], out: &mut [f64]) {
        kernels::cmp_block(KernelMetric::Chebyshev, query.coords(), block, out);
    }

    #[inline]
    fn within_block(&self, query: &P, block: &[P], cmp_threshold: f64, out: &mut [bool]) {
        kernels::within_block(
            KernelMetric::Chebyshev,
            query.coords(),
            block,
            cmp_threshold,
            out,
        );
    }

    fn cache_fingerprint(&self, points: &[P]) -> Option<u128> {
        Some(fingerprint_points("chebyshev", points))
    }
}

/// The angular distance `d(a, b) = arccos(cos_sim(a, b))` in radians.
///
/// Unlike raw cosine *similarity*, the angle is a proper metric on nonzero
/// vectors, so the clustering guarantees carry over to embedding spaces such
/// as the word2vec vectors of the paper's Wiki dataset. Zero vectors are
/// assigned angle `π/2` to every other vector (and `0` to themselves) so the
/// function stays total.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CosineAngular;

impl<P: Coordinates> Metric<P> for CosineAngular {
    #[inline]
    fn distance(&self, a: &P, b: &P) -> f64 {
        debug_assert_eq!(a.dim(), b.dim(), "dimension mismatch");
        let (mut dot, mut na, mut nb) = (0.0, 0.0, 0.0);
        for (x, y) in a.coords().iter().zip(b.coords()) {
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        if na == 0.0 && nb == 0.0 {
            return 0.0;
        }
        if na == 0.0 || nb == 0.0 {
            return std::f64::consts::FRAC_PI_2;
        }
        // Clamp for floating-point drift before acos.
        (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0).acos()
    }

    // The angle is its own comparison proxy (no monotone shortcut
    // survives the acos boundary cases), so both block entry points run
    // the same dispatched kernel.
    #[inline]
    fn cmp_distance_block(&self, query: &P, block: &[P], out: &mut [f64]) {
        kernels::cosine_block(query.coords(), block, out);
    }

    #[inline]
    fn distance_to_block(&self, query: &P, block: &[P], out: &mut [f64]) {
        kernels::cosine_block(query.coords(), block, out);
    }

    fn within_block(&self, query: &P, block: &[P], cmp_threshold: f64, out: &mut [bool]) {
        // Same shape as the shared exact path: proxy values through the
        // dispatched kernel, compared in place on stack sub-blocks.
        let mut buf = [0.0f64; 64];
        for (bchunk, ochunk) in block.chunks(64).zip(out.chunks_mut(64)) {
            let k = bchunk.len();
            kernels::cosine_block(query.coords(), bchunk, &mut buf[..k]);
            for (o, &d) in ochunk.iter_mut().zip(&buf[..k]) {
                *o = d <= cmp_threshold;
            }
        }
    }

    fn cache_fingerprint(&self, points: &[P]) -> Option<u128> {
        Some(fingerprint_points("cosine-angular", points))
    }
}

/// An explicit distance matrix over point indices `0..n`.
///
/// This is the adversary's metric: property tests use it to exercise the
/// algorithms on arbitrary (non-Euclidean) metrics, with
/// [`Precomputed::check_metric_axioms`] guarding that generated matrices are
/// genuine metrics.
#[derive(Clone, Debug)]
pub struct Precomputed {
    n: usize,
    /// Row-major `n × n` distances.
    d: Vec<f64>,
}

impl Precomputed {
    /// Builds a precomputed metric from a row-major `n × n` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `matrix.len() != n * n`.
    pub fn new(n: usize, matrix: Vec<f64>) -> Self {
        assert_eq!(matrix.len(), n * n, "matrix must be n*n");
        Precomputed { n, d: matrix }
    }

    /// Builds the metric from the distances of `points` under `metric`,
    /// so index-based algorithms can be cross-checked against point-based
    /// ones.
    pub fn from_points<P, M: Metric<P>>(points: &[P], metric: &M) -> Self {
        let n = points.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let dist = metric.distance(&points[i], &points[j]);
                d[i * n + j] = dist;
                d[j * n + i] = dist;
            }
        }
        Precomputed { n, d }
    }

    /// Number of points in the space.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Verifies the metric axioms up to tolerance `tol`, returning a
    /// description of the first violation found.
    pub fn check_metric_axioms(&self, tol: f64) -> Result<(), String> {
        let n = self.n;
        for i in 0..n {
            if self.d[i * n + i].abs() > tol {
                return Err(format!("d({i},{i}) = {} != 0", self.d[i * n + i]));
            }
            for j in 0..n {
                let dij = self.d[i * n + j];
                if dij < 0.0 {
                    return Err(format!("d({i},{j}) = {dij} < 0"));
                }
                if (dij - self.d[j * n + i]).abs() > tol {
                    return Err(format!("asymmetric at ({i},{j})"));
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let lhs = self.d[i * n + j];
                    let rhs = self.d[i * n + k] + self.d[k * n + j];
                    if lhs > rhs + tol {
                        return Err(format!(
                            "triangle inequality violated: d({i},{j})={lhs} > d({i},{k})+d({k},{j})={rhs}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl Metric<usize> for Precomputed {
    #[inline]
    fn distance(&self, a: &usize, b: &usize) -> f64 {
        self.d[a * self.n + b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn p(coords: &[f64]) -> Point {
        Point::new(coords.to_vec())
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        let a = p(&[0.0, 0.0]);
        let b = p(&[3.0, 4.0]);
        assert_eq!(Euclidean.distance(&a, &b), 5.0);
        assert_eq!(Euclidean.distance_squared(&a, &b), 25.0);
    }

    #[test]
    fn manhattan_matches_hand_computation() {
        let a = p(&[1.0, -1.0]);
        let b = p(&[4.0, 3.0]);
        assert_eq!(Manhattan.distance(&a, &b), 3.0 + 4.0);
    }

    #[test]
    fn chebyshev_matches_hand_computation() {
        let a = p(&[1.0, -1.0]);
        let b = p(&[4.0, 3.0]);
        assert_eq!(Chebyshev.distance(&a, &b), 4.0);
    }

    #[test]
    fn cosine_orthogonal_vectors() {
        let a = p(&[1.0, 0.0]);
        let b = p(&[0.0, 2.0]);
        let d = CosineAngular.distance(&a, &b);
        assert!((d - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn cosine_parallel_vectors_are_identical() {
        let a = p(&[1.0, 1.0]);
        let b = p(&[2.0, 2.0]);
        // acos amplifies rounding near cos = 1: acos(1 - 1e-16) ~ 1.5e-8.
        assert!(CosineAngular.distance(&a, &b) < 1e-7);
    }

    #[test]
    fn cosine_zero_vector_is_half_pi_from_everything() {
        let z = p(&[0.0, 0.0]);
        let a = p(&[1.0, 0.0]);
        assert_eq!(CosineAngular.distance(&z, &a), std::f64::consts::FRAC_PI_2);
        assert_eq!(CosineAngular.distance(&z, &z), 0.0);
    }

    #[test]
    // The needless borrow IS the test subject: the blanket `&M` impl.
    #[allow(clippy::needless_borrows_for_generic_args)]
    fn metric_through_reference() {
        // The blanket `&M` impl allows passing borrowed metrics.
        fn radius<M: Metric<Point>>(m: M, a: &Point, b: &Point) -> f64 {
            m.distance(a, b)
        }
        let a = p(&[0.0]);
        let b = p(&[2.0]);
        assert_eq!(radius(Euclidean, &a, &b), 2.0);
        assert_eq!(radius(&Euclidean, &a, &b), 2.0);
    }

    #[test]
    fn cmp_proxy_round_trips_and_orders() {
        let pts = [
            p(&[0.0, 0.0]),
            p(&[3.0, 4.0]),
            p(&[1.0, 1.0]),
            p(&[-2.5, 7.1]),
        ];
        // Point-free conversions need the point type pinned now that the
        // metrics are generic over `Coordinates`.
        let eucl: &dyn Metric<Point> = &Euclidean;
        let manh: &dyn Metric<Point> = &Manhattan;
        for a in &pts {
            for b in &pts {
                let d = Euclidean.distance(a, b);
                let c = Euclidean.cmp_distance(a, b);
                // Exact round-trip: sqrt of the square IS the distance.
                assert_eq!(eucl.cmp_to_distance(c).to_bits(), d.to_bits());
                assert_eq!(c == 0.0, d == 0.0);
                // Default impls on other metrics are the identity.
                let m = Manhattan.distance(a, b);
                assert_eq!(Manhattan.cmp_distance(a, b), m);
                assert_eq!(manh.distance_to_cmp(m), m);
            }
        }
        // Order isomorphism across pairs.
        let d01 = Euclidean.distance(&pts[0], &pts[1]);
        let d02 = Euclidean.distance(&pts[0], &pts[2]);
        let c01 = Euclidean.cmp_distance(&pts[0], &pts[1]);
        let c02 = Euclidean.cmp_distance(&pts[0], &pts[2]);
        assert_eq!(d01 > d02, c01 > c02);
        // Threshold mapping: radius 5 on the proxy scale is 25.
        assert_eq!(eucl.distance_to_cmp(5.0), 25.0);
    }

    #[test]
    fn cmp_proxy_forwards_through_references() {
        let a = p(&[0.0]);
        let b = p(&[3.0]);
        let by_ref: &dyn Metric<Point> = &Euclidean;
        assert_eq!((&by_ref).cmp_distance(&a, &b), 9.0);
        assert_eq!((&by_ref).cmp_to_distance(9.0), 3.0);
        assert_eq!((&by_ref).distance_to_cmp(3.0), 9.0);
    }

    #[test]
    fn precomputed_round_trips_euclidean() {
        let pts = vec![p(&[0.0]), p(&[1.0]), p(&[5.0])];
        let pre = Precomputed::from_points(&pts, &Euclidean);
        assert_eq!(pre.len(), 3);
        assert_eq!(pre.distance(&0, &2), 5.0);
        assert_eq!(pre.distance(&2, &1), 4.0);
        pre.check_metric_axioms(1e-9).unwrap();
    }

    #[test]
    fn precomputed_detects_triangle_violation() {
        // d(0,2)=10 but d(0,1)+d(1,2)=2.
        let m = Precomputed::new(
            3,
            vec![
                0.0, 1.0, 10.0, //
                1.0, 0.0, 1.0, //
                10.0, 1.0, 0.0,
            ],
        );
        let err = m.check_metric_axioms(1e-9).unwrap_err();
        assert!(err.contains("triangle"), "unexpected error: {err}");
    }

    #[test]
    fn precomputed_detects_asymmetry() {
        let m = Precomputed::new(2, vec![0.0, 1.0, 2.0, 0.0]);
        let err = m.check_metric_axioms(1e-9).unwrap_err();
        assert!(err.contains("asymmetric"), "unexpected error: {err}");
    }

    #[test]
    #[should_panic(expected = "matrix must be n*n")]
    fn precomputed_rejects_bad_shape() {
        let _ = Precomputed::new(2, vec![0.0; 3]);
    }
}
