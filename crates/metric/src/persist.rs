//! Process-wide hook for persisting priced distance matrices across runs.
//!
//! [`crate::CachedOracle`] memoizes a proxy-scale [`crate::DistanceMatrix`]
//! per handle family, but that cache dies with the process: every figure
//! binary, benchmark, or CLI invocation that derives the same seeded
//! coreset re-prices the same `O(|T|²)` matrix. This module defines the
//! seam that makes the cache *persistent* without the metric crate knowing
//! anything about files or codecs:
//!
//! * [`MatrixPersistence`] — an object-safe load/store interface keyed by
//!   the 128-bit content fingerprint of (metric identity, point
//!   coordinates) from [`crate::Metric::cache_fingerprint`];
//! * [`install_matrix_persistence`] — installs one backend for the whole
//!   process (the `kcenter-store` crate provides the disk-backed
//!   implementation and an `install_from_env` helper honouring
//!   `KCENTER_CACHE_DIR`);
//! * [`store_hit_count`] / [`store_miss_count`] — process-wide accounting,
//!   the persistent-store counterpart of
//!   [`crate::pairwise::matrix_build_count`]: a warm run shows
//!   `store_hit_count() > 0` with `matrix_build_count() == 0`, a cold run
//!   the reverse. Tests and the figure binaries pin these to prove the
//!   cache never silently rebuilds (or silently serves nothing).
//!
//! Nothing is installed by default, so unit tests and library consumers
//! see exactly the pre-existing in-process behaviour unless a binary
//! explicitly opts in.

use std::sync::{Arc, OnceLock};

use crate::pairwise::DistanceMatrix;

/// Load/store interface for persisted proxy-scale distance matrices.
///
/// Implementations must be crash-safe and tolerant: `load` returns `None`
/// for anything it cannot fully validate (missing entry, truncated file,
/// checksum or version mismatch) — a *clean miss*, never a panic — and
/// `store` is best-effort (a failed write must not fail the computation
/// that produced the matrix).
pub trait MatrixPersistence: Send + Sync {
    /// Returns the matrix stored under `fingerprint`, or `None` on any
    /// miss or validation failure.
    fn load(&self, fingerprint: u128) -> Option<DistanceMatrix>;

    /// Persists `matrix` under `fingerprint` (best-effort; concurrent
    /// writers to one fingerprint must never leave a corrupt entry).
    fn store(&self, fingerprint: u128, matrix: &DistanceMatrix);
}

static PERSISTENCE: OnceLock<Arc<dyn MatrixPersistence>> = OnceLock::new();

/// Hit/miss accounting lives in the shared metrics registry
/// (`metric.store.hits` / `metric.store.misses`), so the persistent-cache
/// counters show up in the same Prometheus/JSON exposition as everything
/// else; these functions keep cheap cached handles.
fn store_hits() -> &'static kcenter_obs::Counter {
    static COUNTER: OnceLock<kcenter_obs::Counter> = OnceLock::new();
    COUNTER.get_or_init(|| kcenter_obs::counter("metric.store.hits"))
}

fn store_misses() -> &'static kcenter_obs::Counter {
    static COUNTER: OnceLock<kcenter_obs::Counter> = OnceLock::new();
    COUNTER.get_or_init(|| kcenter_obs::counter("metric.store.misses"))
}

/// Installs the process-wide matrix persistence backend. The first call
/// wins; returns `false` (leaving the existing backend) on later calls.
pub fn install_matrix_persistence(backend: Arc<dyn MatrixPersistence>) -> bool {
    PERSISTENCE.set(backend).is_ok()
}

/// The installed backend, if any.
pub fn matrix_persistence() -> Option<&'static dyn MatrixPersistence> {
    PERSISTENCE.get().map(|p| p.as_ref() as _)
}

/// Whether a persistence backend is installed.
pub fn matrix_persistence_installed() -> bool {
    PERSISTENCE.get().is_some()
}

/// Number of matrix builds this process *avoided* by loading a persisted
/// entry (0 unless a backend is installed).
pub fn store_hit_count() -> usize {
    store_hits().get() as usize
}

/// Number of matrix builds that consulted the installed backend, found
/// nothing valid, and priced + persisted the matrix themselves.
pub fn store_miss_count() -> usize {
    store_misses().get() as usize
}

pub(crate) fn record_store_hit() {
    store_hits().inc();
}

pub(crate) fn record_store_miss() {
    store_misses().inc();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_none_installed_by_default() {
        // Unit tests never install a backend, so the library-default path
        // (no persistence) is what every other suite exercises.
        assert!(!matrix_persistence_installed() || matrix_persistence().is_some());
        let (h, m) = (store_hit_count(), store_miss_count());
        record_store_hit();
        record_store_miss();
        assert_eq!(store_hit_count(), h + 1);
        assert_eq!(store_miss_count(), m + 1);
    }
}
