//! Ablation: coreset size versus the dataset's doubling dimension.
//!
//! Lemma 3 bounds the ε-stopping-rule coreset by `k·(4/ε)^D`, where `D` is
//! the *dataset's* doubling dimension — not the ambient space's. This
//! experiment embeds `D_int`-dimensional manifolds in a fixed 16-dimensional
//! ambient space, runs the ε-stopping coreset builder, and reports:
//!
//! * the estimated doubling dimension of each dataset,
//! * the coreset size the stopping rule selects for each ε,
//! * the per-step growth ratio (size(ε/2) / size(ε)), which Lemma 3
//!   predicts approaches `2^D`.
//!
//! Expected shape: coreset sizes explode with intrinsic dimension at fixed
//! ε, while the ambient dimension is irrelevant — the "oblivious to D"
//! selling point of the MapReduce algorithms made quantitative.
//!
//! ```text
//! cargo run --release -p kcenter-bench --bin ablation_doubling_dimension
//! ```

use kcenter_bench::Args;
use kcenter_core::coreset::{build_weighted_coreset, CoresetSpec};
use kcenter_data::embedded_manifold;
use kcenter_metric::doubling::{estimate_doubling_dimension, DoublingConfig};
use kcenter_metric::Euclidean;

fn main() {
    let args = Args::parse();
    let n = args.size(8_000, 50_000);
    let k = 10usize;
    let ambient = 16usize;
    let epss = [1.0f64, 0.5, 0.25];

    println!("=== Ablation: coreset size vs doubling dimension (Lemma 3: |T_i| <= k(4/eps)^D) ===");
    println!("n = {n}, k = {k}, ambient dim = {ambient}\n");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12} {:>14}",
        "D_int", "D_est", "eps=1", "eps=0.5", "eps=0.25", "growth/halving"
    );

    for intrinsic in [1usize, 2, 3, 4] {
        let points = embedded_manifold(n, intrinsic, ambient, 0.0, 42);
        let d_est = estimate_doubling_dimension(&points, &Euclidean, DoublingConfig::default());

        let mut sizes = Vec::new();
        for &eps in &epss {
            let build =
                build_weighted_coreset(&points, &Euclidean, k, &CoresetSpec::EpsStop { eps }, 0);
            sizes.push(build.tau);
        }
        // Mean growth factor per halving of ε; Lemma 3 predicts ≈ 2^D.
        let growth = ((sizes[2] as f64 / sizes[0] as f64).sqrt()).max(1.0);
        println!(
            "{intrinsic:>6} {d_est:>10.2} {:>12} {:>12} {:>12} {:>13.2}x",
            sizes[0], sizes[1], sizes[2], growth
        );
    }
    println!("\n(growth per ε-halving ≈ 2^D: the low-dimensional manifolds stay cheap");
    println!(" even though every point lives in R^16 — the algorithms adapt to the");
    println!(" dataset's intrinsic complexity, never told what D is)");
}
