//! Figure 2: approximation ratio of the MapReduce k-center algorithm with
//! coresets of size µ·k, µ ∈ {1,2,4,8}, parallelism ℓ ∈ {2,4,8,16}.
//!
//! Paper setup: Higgs (k=50), Power (k=100), Wiki (k=60); µ = 1 is the
//! MalkomesEtAl baseline. Expected shape: the ratio falls as µ grows, and
//! larger ℓ also helps (the round-2 union ℓ·τ grows).
//!
//! ```text
//! cargo run --release -p kcenter-bench --bin fig2_mr_kcenter [-- --paper]
//! ```

use kcenter_bench::{Args, Dataset, RatioTable};
use kcenter_core::coreset::CoresetSpec;
use kcenter_core::mapreduce_kcenter::{mr_kcenter, MrKCenterConfig};
use kcenter_data::shuffled;
use kcenter_metric::Euclidean;

fn main() {
    let args = Args::parse();
    let n = args.size(30_000, 500_000);
    let mus = [1usize, 2, 4, 8];
    let ells = [2usize, 4, 8, 16];

    println!("=== Figure 2: MR k-center — ratio vs coreset size µk and parallelism ℓ ===");
    println!(
        "n = {n}, reps = {} (paper: 11M/2M/5.5M points, 10 reps)\n",
        args.reps
    );

    for dataset in Dataset::all() {
        let k = dataset.paper_k();
        let mut table = RatioTable::new();
        for rep in 0..args.reps {
            let points = shuffled(&dataset.generate(n, rep as u64), 1000 + rep as u64);
            for &ell in &ells {
                for &mu in &mus {
                    let result = mr_kcenter(
                        &points,
                        &Euclidean,
                        &MrKCenterConfig {
                            k,
                            ell,
                            coreset: CoresetSpec::Multiplier { mu },
                            seed: rep as u64,
                        },
                    )
                    .expect("valid configuration");
                    table.record(
                        &format!("l={ell:<2}"),
                        &format!("mu={mu}"),
                        result.clustering.radius,
                    );
                }
            }
        }
        println!(
            "--- {} (k = {k}) — approximation ratio (mu=1 ≡ MalkomesEtAl) ---",
            dataset.name()
        );
        let xs: Vec<String> = mus.iter().map(|m| format!("mu={m}")).collect();
        let series: Vec<String> = ells.iter().map(|l| format!("l={l:<2}")).collect();
        table.print("parallelism \\ coreset", &xs, &series);
        println!("best radius found: {:.4}\n", table.best_radius());
    }
}
