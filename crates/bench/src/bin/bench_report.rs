//! Bench report: diffs two `BENCH_*.json` files produced by
//! `bench_runner` and flags per-kernel regressions beyond a noise-aware
//! threshold — the advisory gate that turns the committed perf
//! trajectory into an actionable signal instead of an archive.
//!
//! Rows are matched by `(kernel, dataset, threads)`. A row regresses
//! when the current median exceeds the baseline median by more than
//! `--threshold` percent **and** the gap clears the measurement noise
//! (four times the summed MADs of both rows — a sample-median analogue
//! of a separation test; medians-within-noise never flag). Rows whose
//! input size `n` changed are reported but never flagged: the workload
//! moved, so the clock difference is not a regression signal.
//!
//! Usage: `bench_report BASELINE.json CURRENT.json [--threshold PCT]`
//!
//! Exit code: 0 when no row regresses, 1 otherwise (the CI job runs
//! advisory, so a flag is a loud comment, not a red build). The parser
//! reads exactly the line-per-record shape `bench_runner` writes — this
//! is a pinned tool for a pinned format, not a general JSON reader.

/// One measured row of a `BENCH_*.json`.
#[derive(Clone, Debug)]
struct Row {
    kernel: String,
    dataset: String,
    n: u64,
    threads: u64,
    median_ns: u64,
    mad_ns: u64,
}

/// Extracts `"key": <value>` from a record line; strings lose their
/// quotes, numbers come back verbatim.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": ");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}']).next()
    }
    .map(str::trim)
}

fn parse_rows(path: &str) -> Vec<Row> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    text.lines()
        .filter(|line| line.contains("\"kernel\""))
        .filter_map(|line| {
            Some(Row {
                kernel: field(line, "kernel")?.to_string(),
                dataset: field(line, "dataset")?.to_string(),
                n: field(line, "n")?.parse().ok()?,
                threads: field(line, "threads")?.parse().ok()?,
                median_ns: field(line, "median_ns")?.parse().ok()?,
                mad_ns: field(line, "mad_ns")?.parse().ok()?,
            })
        })
        .collect()
}

fn human(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

fn main() {
    let mut paths = Vec::new();
    let mut threshold_pct = 10.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--threshold needs a number (percent)"));
            }
            other if !other.starts_with("--") => paths.push(other.to_string()),
            other => {
                eprintln!("unknown argument {other}; usage: bench_report BASELINE.json CURRENT.json [--threshold PCT]");
                std::process::exit(2);
            }
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!("usage: bench_report BASELINE.json CURRENT.json [--threshold PCT]");
        std::process::exit(2);
    };
    let baseline = parse_rows(baseline_path);
    let current = parse_rows(current_path);
    println!(
        "bench_report: {} ({} rows) vs {} ({} rows), threshold {threshold_pct}%",
        baseline_path,
        baseline.len(),
        current_path,
        current.len(),
    );

    let mut regressions = 0usize;
    for cur in &current {
        let base = baseline.iter().find(|b| {
            b.kernel == cur.kernel && b.dataset == cur.dataset && b.threads == cur.threads
        });
        let Some(base) = base else {
            println!(
                "  NEW        {:<40} {:>10}  (no baseline row)",
                row_key(cur),
                human(cur.median_ns)
            );
            continue;
        };
        let delta_pct =
            (cur.median_ns as f64 - base.median_ns as f64) / base.median_ns.max(1) as f64 * 100.0;
        if base.n != cur.n {
            println!(
                "  RESIZED    {:<40} {:>10} -> {:>10} ({delta_pct:+.1}%, n {} -> {}; not compared)",
                row_key(cur),
                human(base.median_ns),
                human(cur.median_ns),
                base.n,
                cur.n
            );
            continue;
        }
        let noise_ns = 4 * (base.mad_ns + cur.mad_ns);
        let gap_ns = cur.median_ns.saturating_sub(base.median_ns);
        let verdict = if delta_pct > threshold_pct && gap_ns > noise_ns {
            regressions += 1;
            "REGRESSED"
        } else if delta_pct < -threshold_pct
            && base.median_ns.saturating_sub(cur.median_ns) > noise_ns
        {
            "improved"
        } else {
            "ok"
        };
        println!(
            "  {verdict:<10} {:<40} {:>10} -> {:>10} ({delta_pct:+.1}%, noise ±{})",
            row_key(cur),
            human(base.median_ns),
            human(cur.median_ns),
            human(noise_ns)
        );
    }
    for base in &baseline {
        if !current.iter().any(|c| {
            c.kernel == base.kernel && c.dataset == base.dataset && c.threads == base.threads
        }) {
            println!(
                "  MISSING    {:<40} (row dropped from current)",
                row_key(base)
            );
        }
    }

    if regressions > 0 {
        println!("{regressions} kernel(s) regressed beyond {threshold_pct}% + noise");
        std::process::exit(1);
    }
    println!("no regressions beyond {threshold_pct}% + noise");
}

fn row_key(r: &Row) -> String {
    format!("{}/{}@t{}", r.kernel, r.dataset, r.threads)
}
