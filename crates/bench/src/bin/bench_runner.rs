//! Bench runner: measures the hot kernels (GMM, `OutliersCluster`, radius
//! search, `DistanceMatrix` construction, cached-vs-rebuilt radius-search
//! sweeps) plus the multi-process executor (warm vs cold worker fleet,
//! store-served vs re-written shards) and the serve-layer session
//! registry (batched ingest throughput, query latency solver-path vs
//! memoized) on the seeded `Power` workload and writes machine-readable
//! `BENCH_pr10.json` — the perf trajectory's record. The JSON header
//! also carries the hardware-thread count and a snapshot of the
//! process metrics registry (`kcenter-obs`) after the run.
//!
//! The block-kernel consumers (`gmm_select`'s chunked min-distance scan
//! and the blocked `DistanceMatrix::build`) are measured **paired**:
//! auto-dispatched SIMD versus the `set_force_scalar` escape hatch, with
//! samples interleaved (ABBA), so the vectorization before/after comes
//! from identical surrounding code on identical hardware. The JSON header
//! records the auto-detected ISA the "auto" rows ran on. The executor
//! rows are paired the same way: a persistent `WorkerFleet` reused
//! across samples versus a fresh fleet spawned per run (fleet-warmup
//! amortization), and content-addressed store-served shards versus
//! work-dir re-sharding; the header pins that every warm sample performed
//! **zero** shard writes. The binary re-invokes itself in a hidden
//! `exec-worker` mode as the fleet's worker process.
//!
//! Every number comes from the criterion shim's measurement kernel
//! (warmup, N samples, MAD-based outlier rejection, median of survivors)
//! and is recorded per thread count: once with a 1-thread pool (the
//! sequential reference — identical code path to the old sequential shim)
//! and once with the machine's full parallelism when that differs.
//!
//! With `KCENTER_CACHE_DIR` set, the shared coreset fixture is persisted
//! under a fingerprint of its generation spec (dataset, n, seed, base, µ)
//! and re-loaded by later runs, so repeated benchmarking sessions skip the
//! GMM construction entirely; the matrix-backed kernels likewise reuse
//! persisted proxy matrices where the kernel under test is not the build
//! itself.
//!
//! Usage: `bench_runner [--out PATH] [--samples N] [--warmup N] [--n N] [--smoke]`
//!
//! `--smoke` is the CI profile: 2 warmup runs, 5 samples, a 4k-point
//! workload, and output to `BENCH_smoke.json` — fast enough for every
//! push, still exercising each kernel end-to-end (defaults only; explicit
//! `--warmup/--samples/--n/--out` still win).

use std::fmt::Write as _;

use criterion::{measure, measure_paired, Measurement};
use kcenter_bench::Dataset;
use kcenter_core::coreset::{build_weighted_coreset, CoresetSpec};
use kcenter_core::gmm::gmm_select;
use kcenter_core::outliers_cluster::{outliers_cluster, PointsOracle};
use kcenter_core::radius_search::{find_min_feasible_radius, solve_coreset_cached, SearchMode};
use kcenter_metric::{
    kernels, CachedOracle, DistanceMatrix, Euclidean, Metric, Point, PointRef, PointSet,
};

/// `Euclidean` with the proxy hooks forced back to their defaults: every
/// comparison pays the `sqrt`, i.e. the pre-PR code path. Benchmarked
/// alongside the proxied metric to record the sqrt-free before/after on
/// identical hardware and identical surrounding code.
struct SqrtEuclidean;

impl Metric<Point> for SqrtEuclidean {
    #[inline]
    fn distance(&self, a: &Point, b: &Point) -> f64 {
        Euclidean.distance(a, b)
    }
}

struct Record {
    kernel: &'static str,
    dataset: &'static str,
    /// Input size the kernel ran on (points for gmm/matrix, coreset size
    /// for outliers_cluster/radius_search).
    n: usize,
    /// Distance evaluations (or equivalent inner-loop items) per run, the
    /// denominator of `ns_per_op`.
    ops: u64,
    threads: usize,
    m: Measurement,
}

fn json_record(r: &Record) -> String {
    let median_ns = r.m.median.as_nanos();
    let mad_ns = r.m.mad.as_nanos();
    let ns_per_op = median_ns as f64 / r.ops.max(1) as f64;
    format!(
        "    {{\"kernel\": \"{}\", \"dataset\": \"{}\", \"n\": {}, \"threads\": {}, \
         \"median_ns\": {median_ns}, \"mad_ns\": {mad_ns}, \"samples\": {}, \
         \"rejected\": {}, \"ops\": {}, \"ns_per_op\": {ns_per_op:.3}}}",
        r.kernel, r.dataset, r.n, r.threads, r.m.samples, r.m.rejected, r.ops
    )
}

/// Dataset-generation seed of the benchmark workload; part of the coreset
/// fixture's cache key, so changing it invalidates persisted fixtures.
const FIXTURE_DATASET_SEED: u64 = 1;
/// GMM start index of the coreset fixture; likewise part of the key.
const FIXTURE_GMM_START: usize = 0;

/// Fingerprint of the shared coreset fixture's *generation spec* — the
/// spec-keyed flavour of artifact addressing (versus the content-keyed
/// matrix fingerprints): dataset generation is seed-deterministic, so the
/// spec (dataset, size, dataset seed, coreset base, µ, GMM start) fully
/// determines the coreset and a later run can load it without
/// regenerating the 10k-point dataset or re-running GMM. Every constant
/// that feeds the build is folded in — change one and the key moves —
/// plus the crate version, so a release that alters GMM/coreset
/// semantics between versions cannot be served a stale fixture. (Within
/// one version, a semantic change to the derivation must bump the domain
/// string; the golden-output suites exist to make such changes loud.)
fn coreset_fixture_fingerprint(n: usize, base: usize, mu: usize) -> u128 {
    let mut fp = kcenter_store::Fingerprint::with_domain("kcenter-bench/coreset-fixture/v1");
    fp.write_str(env!("CARGO_PKG_VERSION"));
    fp.write_str(Dataset::Power.name());
    fp.write_usize(n);
    fp.write_u64(FIXTURE_DATASET_SEED);
    fp.write_usize(base);
    fp.write_usize(mu);
    fp.write_usize(FIXTURE_GMM_START);
    fp.finish()
}

/// Builds (or, warm, loads) the shared coreset fixture for the outlier
/// kernels: τ = µ(k+z) GMM centers with proxy weights over the seeded
/// Power workload.
fn coreset_fixture(
    points: &[Point],
    n: usize,
    base: usize,
    mu: usize,
    store: Option<&kcenter_store::ArtifactStore>,
) -> (Vec<Point>, Vec<u64>) {
    let fingerprint = coreset_fixture_fingerprint(n, base, mu);
    if let Some(store) = store {
        if let Some((cpoints, weights)) = store.load_coreset(fingerprint) {
            eprintln!(
                "  coreset fixture: loaded from cache ({} points)",
                cpoints.len()
            );
            return (cpoints, weights);
        }
    }
    let build = build_weighted_coreset(
        points,
        &Euclidean,
        base,
        &CoresetSpec::Multiplier { mu },
        FIXTURE_GMM_START,
    );
    let cpoints = build.coreset.points_only();
    let weights = build.coreset.weights();
    if let Some(store) = store {
        if let Err(err) = store.store_coreset(fingerprint, &cpoints, &weights) {
            eprintln!("  coreset fixture: failed to persist: {err}");
        }
    }
    (cpoints, weights)
}

fn run_kernels(
    threads: usize,
    warmup: usize,
    samples: usize,
    n: usize,
    store: Option<&kcenter_store::ArtifactStore>,
    records: &mut Vec<Record>,
) {
    let (k, z, mu) = (20usize, 50usize, 8usize);
    let points = Dataset::Power.generate(n, FIXTURE_DATASET_SEED);

    // The paired SIMD rows run over SoA views (`PointRef`s into one
    // contiguous `PointSet` block) — the layout the exec worker feeds the
    // kernels in production. Owned `Vec<Point>` rows would bury the vector
    // kernels' strided coordinate loads under per-point pointer chases.
    let soa = PointSet::from_points(&points);
    let point_refs: Vec<PointRef<'_>> = soa.iter().collect();

    // Kernel 1: GMM farthest-first traversal, k = paper's Power k (100),
    // with the sqrt-free proxy metric and the forced-sqrt "before" path.
    // The auto row uses the detected SIMD ISA for its chunked min-distance
    // block scan; the force_scalar row pins the scalar reference kernels.
    // Both produce bit-identical centers — only the clock differs.
    let gmm_k = Dataset::Power.paper_k();
    let (m, m_scalar) = measure_paired(
        warmup,
        samples,
        || {
            kernels::set_force_scalar(false);
            gmm_select(&point_refs, &Euclidean, gmm_k, 0)
        },
        || {
            kernels::set_force_scalar(true);
            gmm_select(&point_refs, &Euclidean, gmm_k, 0)
        },
    );
    kernels::set_force_scalar(false);
    records.push(Record {
        kernel: "gmm_select",
        dataset: "Power",
        n,
        ops: (n * gmm_k) as u64,
        threads,
        m,
    });
    eprintln!(
        "  gmm_select/k={gmm_k}            {:>12.2?} ±{:.2?}",
        m.median, m.mad
    );
    records.push(Record {
        kernel: "gmm_select_force_scalar",
        dataset: "Power",
        n,
        ops: (n * gmm_k) as u64,
        threads,
        m: m_scalar,
    });
    eprintln!(
        "  gmm_select (force scalar)   {:>12.2?} ±{:.2?}",
        m_scalar.median, m_scalar.mad
    );

    let m = measure(warmup, samples, || {
        gmm_select(&points, &SqrtEuclidean, gmm_k, 0)
    });
    records.push(Record {
        kernel: "gmm_select_sqrt_before",
        dataset: "Power",
        n,
        ops: (n * gmm_k) as u64,
        threads,
        m,
    });
    eprintln!(
        "  gmm_select (sqrt before)    {:>12.2?} ±{:.2?}",
        m.median, m.mad
    );

    // Shared coreset fixture for the outlier kernels: τ = µ(k+z) = 560,
    // loaded from the persistent store when a previous run built it.
    let (cpoints, weights) = coreset_fixture(&points, n, k + z, mu, store);
    let t = cpoints.len();

    // Kernel 2: condensed distance-matrix construction over the coreset —
    // the blocked pairwise build, auto-dispatched vs forced-scalar.
    let coreset_soa = PointSet::from_points(&cpoints);
    let coreset_refs: Vec<PointRef<'_>> = coreset_soa.iter().collect();
    let (m, m_scalar) = measure_paired(
        warmup,
        samples,
        || {
            kernels::set_force_scalar(false);
            DistanceMatrix::build(&coreset_refs, &Euclidean)
        },
        || {
            kernels::set_force_scalar(true);
            DistanceMatrix::build(&coreset_refs, &Euclidean)
        },
    );
    kernels::set_force_scalar(false);
    records.push(Record {
        kernel: "distance_matrix_build",
        dataset: "Power",
        n: t,
        ops: (t * t / 2) as u64,
        threads,
        m,
    });
    eprintln!(
        "  distance_matrix/|T|={t}     {:>12.2?} ±{:.2?}",
        m.median, m.mad
    );
    records.push(Record {
        kernel: "distance_matrix_build_force_scalar",
        dataset: "Power",
        n: t,
        ops: (t * t / 2) as u64,
        threads,
        m: m_scalar,
    });
    eprintln!(
        "  distance_matrix (scalar)    {:>12.2?} ±{:.2?}",
        m_scalar.median, m_scalar.mad
    );

    let matrix = DistanceMatrix::build(&cpoints, &Euclidean);

    // Kernel 3: one OutliersCluster run (incremental ball weights).
    let (r_guess, eps) = (5.0f64, 0.25f64);
    let m = measure(warmup, samples, || {
        outliers_cluster(&matrix, &weights, k, r_guess, eps)
    });
    records.push(Record {
        kernel: "outliers_cluster",
        dataset: "Power",
        n: t,
        ops: (t * t) as u64,
        threads,
        m,
    });
    eprintln!(
        "  outliers_cluster/|T|={t}    {:>12.2?} ±{:.2?}",
        m.median, m.mad
    );

    // Kernel 3b: the same run through a metric-backed oracle, proxied vs
    // forced-sqrt — the sqrt-free before/after on the O(|T|²) scans.
    let proxied = PointsOracle::new(&cpoints, &Euclidean);
    let m = measure(warmup, samples, || {
        outliers_cluster(&proxied, &weights, k, r_guess, eps)
    });
    records.push(Record {
        kernel: "outliers_cluster_points_oracle",
        dataset: "Power",
        n: t,
        ops: (t * t) as u64,
        threads,
        m,
    });
    eprintln!(
        "  outliers_cluster (oracle)   {:>12.2?} ±{:.2?}",
        m.median, m.mad
    );

    let sqrt_oracle = PointsOracle::new(&cpoints, &SqrtEuclidean);
    let m = measure(warmup, samples, || {
        outliers_cluster(&sqrt_oracle, &weights, k, r_guess, eps)
    });
    records.push(Record {
        kernel: "outliers_cluster_points_oracle_sqrt_before",
        dataset: "Power",
        n: t,
        ops: (t * t) as u64,
        threads,
        m,
    });
    eprintln!(
        "  outliers_cluster (sqrt)     {:>12.2?} ±{:.2?}",
        m.median, m.mad
    );

    // Kernel 4: the full geometric-grid radius search.
    let m = measure(warmup, samples, || {
        find_min_feasible_radius(
            &matrix,
            &weights,
            k,
            z as u64,
            eps,
            SearchMode::GeometricGrid,
        )
    });
    records.push(Record {
        kernel: "radius_search_grid",
        dataset: "Power",
        n: t,
        ops: (t * t) as u64,
        threads,
        m,
    });
    eprintln!(
        "  radius_search/|T|={t}       {:>12.2?} ±{:.2?}",
        m.median, m.mad
    );

    // Kernel 5: the fig4-style sweep shape — repeated radius searches over
    // one coreset. "cached" shares a CachedOracle (the proxy matrix is
    // built once, outside the sweep's inner iterations); "rebuilt" prices
    // the coreset into a fresh matrix on every search, the pre-PR-3
    // behaviour of sweeps that called solve_coreset per configuration.
    // Samples interleave (ABBA) so slow machine drift cannot reorder the
    // medians of what is a ~5%-of-runtime difference.
    let shared = CachedOracle::new(cpoints.clone(), &Euclidean, usize::MAX);
    let _ = shared.matrix(); // warm: sweeps pay the build once, not per search
    let (m_cached, m_rebuilt) = measure_paired(
        warmup,
        samples,
        || {
            solve_coreset_cached(
                &shared,
                &weights,
                k,
                z as u64,
                eps,
                SearchMode::GeometricGrid,
            )
        },
        || {
            let fresh = CachedOracle::new(cpoints.clone(), &Euclidean, usize::MAX);
            solve_coreset_cached(
                &fresh,
                &weights,
                k,
                z as u64,
                eps,
                SearchMode::GeometricGrid,
            )
        },
    );
    records.push(Record {
        kernel: "radius_search_cached_oracle",
        dataset: "Power",
        n: t,
        ops: (t * t) as u64,
        threads,
        m: m_cached,
    });
    eprintln!(
        "  radius_search (cached)      {:>12.2?} ±{:.2?}",
        m_cached.median, m_cached.mad
    );
    assert_eq!(
        shared.build_count() + shared.load_count(),
        1,
        "cached sweep must price its matrix exactly once (built or loaded)"
    );
    records.push(Record {
        kernel: "radius_search_rebuilt_matrix",
        dataset: "Power",
        n: t,
        ops: (t * t) as u64,
        threads,
        m: m_rebuilt,
    });
    eprintln!(
        "  radius_search (rebuilt)     {:>12.2?} ±{:.2?}",
        m_rebuilt.median, m_rebuilt.mad
    );
}

/// Accounting pinned into the JSON header by the executor rows.
struct ExecAccounting {
    warm_shard_writes: usize,
    warm_shard_reuses: usize,
    warm_workers_spawned: usize,
}

/// Executor rows: warm-vs-cold fleet and store-vs-workdir shards, both
/// paired (ABBA). Runs once at process level (the workers own their
/// process-wide pools), on a workload small enough for the smoke profile
/// — spawn/shard overheads, the quantities under test, do not shrink
/// with `n`.
fn run_exec_rows(warmup: usize, samples: usize, records: &mut Vec<Record>) -> ExecAccounting {
    use kcenter_core::mapreduce_kcenter::MrKCenterConfig;
    use kcenter_exec::{
        exec_mr_kcenter, exec_mr_kcenter_on, ExecConfig, MetricKind, WorkerCommand, WorkerFleet,
    };

    let n = 2_000usize;
    let ell = 4usize;
    let points = Dataset::Power.generate(n, FIXTURE_DATASET_SEED);
    let config = MrKCenterConfig {
        k: 20,
        ell,
        coreset: CoresetSpec::Multiplier { mu: 2 },
        seed: 1,
    };
    let worker = WorkerCommand::current_exe(&["exec-worker"]).expect("current exe");
    let exec = ExecConfig::new(worker);

    // Fleet warm-up amortization: the warm arm schedules every sample
    // onto one persistent fleet (0 spawns after the first run); the cold
    // arm spawns and shuts a fresh fleet down per run.
    let mut fleet = WorkerFleet::from_config(&exec);
    let mut warm_workers_spawned = usize::MAX;
    let (m_warm, m_cold) = criterion::measure_paired(
        warmup,
        samples,
        || {
            let run =
                exec_mr_kcenter_on(&mut fleet, &points, MetricKind::Euclidean, &config, &exec)
                    .expect("warm fleet run");
            warm_workers_spawned = warm_workers_spawned.min(run.report.workers_spawned);
            run
        },
        || exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec).expect("cold fleet run"),
    );
    fleet.shutdown();
    for (kernel, m) in [
        ("exec_mr_kcenter_warm_fleet", m_warm),
        ("exec_mr_kcenter_cold_fleet", m_cold),
    ] {
        records.push(Record {
            kernel,
            dataset: "Power",
            n,
            ops: ell as u64,
            threads: 1,
            m,
        });
        eprintln!("  {kernel:<27} {:>12.2?} ±{:.2?}", m.median, m.mad);
    }

    // Content-addressed shard reuse: the warm arm serves every shard from
    // the artifact store (asserted: zero writes per sample); the cold arm
    // re-shards into the work directory on every run.
    let store_dir =
        std::env::temp_dir().join(format!("kcenter-bench-shards-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut stored = exec.clone();
    stored.shard_store =
        Some(kcenter_store::ArtifactStore::open(&store_dir).expect("shard store dir"));
    // Prime: the first run pays the store writes outside the measurement.
    let primed = exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &stored)
        .expect("priming shard store");
    assert_eq!(primed.report.shard_writes, ell);
    let mut warm_shard_writes = 0usize;
    let mut warm_shard_reuses = usize::MAX;
    let (m_reused, m_resharded) = criterion::measure_paired(
        warmup,
        samples,
        || {
            let run = exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &stored)
                .expect("store-served run");
            warm_shard_writes = warm_shard_writes.max(run.report.shard_writes);
            warm_shard_reuses = warm_shard_reuses.min(run.report.shard_reuses);
            run
        },
        || exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec).expect("re-shard run"),
    );
    assert_eq!(warm_shard_writes, 0, "warm runs must not write shards");
    for (kernel, m) in [
        ("exec_mr_kcenter_shards_reused", m_reused),
        ("exec_mr_kcenter_shards_rewritten", m_resharded),
    ] {
        records.push(Record {
            kernel,
            dataset: "Power",
            n,
            ops: ell as u64,
            threads: 1,
            m,
        });
        eprintln!("  {kernel:<27} {:>12.2?} ±{:.2?}", m.median, m.mad);
    }
    let _ = std::fs::remove_dir_all(&store_dir);
    ExecAccounting {
        warm_shard_writes,
        warm_shard_reuses,
        warm_workers_spawned,
    }
}

/// Serve rows: session-ingest throughput through the registry's bounded
/// channel and per-query latency on a live session — the solver path
/// versus the per-session answer memo, paired (ABBA). The two query arms
/// run on *separate* sessions because the memo holds a single entry: the
/// solver arm alternating `k` on the memo arm's session would clobber
/// its cached answer between interleaved samples.
fn run_serve_rows(warmup: usize, samples: usize, records: &mut Vec<Record>) {
    use kcenter_serve::{RegistryConfig, SessionRegistry};

    let n = 4_096usize;
    let config = RegistryConfig {
        tau: 64,
        memory_budget_points: None,
        snapshot_every: 0,
        ingest_buffer: 256,
    };
    let points = Dataset::Power.generate(n, FIXTURE_DATASET_SEED);

    // Ingest throughput: a fresh session absorbs the workload in
    // 256-point batches, each batch crossing the bounded channel exactly
    // as a server-side ingest does.
    let m = measure(warmup, samples, || {
        let registry =
            SessionRegistry::new(Euclidean, config.clone(), None).expect("bench registry");
        for batch in points.chunks(256) {
            registry
                .ingest("bench", "ingest", batch.to_vec())
                .expect("bench ingest");
        }
        registry
    });
    records.push(Record {
        kernel: "serve_ingest_throughput",
        dataset: "Power",
        n,
        ops: n as u64,
        threads: 1,
        m,
    });
    eprintln!(
        "  serve_ingest/n={n}         {:>12.2?} ±{:.2?}",
        m.median, m.mad
    );

    let registry = SessionRegistry::new(Euclidean, config, None).expect("bench registry");
    registry
        .ingest("bench", "solve", points.clone())
        .expect("seed solver session");
    registry
        .ingest("bench", "memo", points.clone())
        .expect("seed memo session");
    let (k, z, eps) = (20usize, 50u64, 0.25f64);
    registry
        .query("bench", "memo", k, z, eps)
        .expect("prime the memo");
    let flip = std::cell::Cell::new(false);
    let (m_solve, m_memo) = measure_paired(
        warmup,
        samples,
        || {
            // Alternate k so every call misses the single-entry memo and
            // pays the full snapshot-and-solve path.
            let kk = if flip.replace(!flip.get()) { k + 1 } else { k };
            let answer = registry
                .query("bench", "solve", kk, z, eps)
                .expect("solver query");
            assert!(!answer.cached, "solver arm must never hit the memo");
            answer
        },
        || {
            let answer = registry
                .query("bench", "memo", k, z, eps)
                .expect("memo query");
            assert!(answer.cached, "memo arm must always hit");
            answer
        },
    );
    for (kernel, m) in [
        ("serve_query_latency", m_solve),
        ("serve_query_memoized", m_memo),
    ] {
        records.push(Record {
            kernel,
            dataset: "Power",
            n,
            ops: 1,
            threads: 1,
            m,
        });
        eprintln!("  {kernel:<27} {:>12.2?} ±{:.2?}", m.median, m.mad);
    }
}

fn main() {
    // Hidden worker mode: the fleet re-invokes this binary as its worker
    // process (`bench_runner exec-worker --serve`).
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("exec-worker") {
        std::process::exit(kcenter_exec::worker_main(raw.into_iter().skip(1)));
    }
    let mut out: Option<String> = None;
    let mut samples: Option<usize> = None;
    let mut warmup: Option<usize> = None;
    let mut n: Option<usize> = None;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--out" => out = Some(value("--out")),
            "--samples" => samples = Some(value("--samples").parse().expect("--samples: integer")),
            "--warmup" => warmup = Some(value("--warmup").parse().expect("--warmup: integer")),
            "--n" => n = Some(value("--n").parse().expect("--n: integer")),
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown argument {other}; usage: [--out PATH] [--samples N] [--warmup N] [--n N] [--smoke]");
                std::process::exit(2);
            }
        }
    }
    // --smoke is a defaults profile, not an override: explicit flags win.
    let out = out.unwrap_or_else(|| {
        if smoke {
            "BENCH_smoke.json"
        } else {
            "BENCH_pr10.json"
        }
        .to_string()
    });
    let samples = samples.unwrap_or(if smoke { 5 } else { 7 });
    let warmup = warmup.unwrap_or(2);
    let n = n.unwrap_or(if smoke { 4_000 } else { 10_000 });

    // The persistent store is used *only* for the spec-keyed coreset
    // fixture here — deliberately not installed as the global matrix
    // persistence: the distance_matrix_build and radius_search_rebuilt
    // kernels measure matrix pricing itself, and serving those from disk
    // would silently benchmark the codec instead of the kernel.
    let store = kcenter_store::ArtifactStore::from_env();
    if let Some(store) = &store {
        eprintln!(
            "persistent cache (coreset fixture only): {}",
            store.dir().display()
        );
    }

    let machine = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut thread_counts = vec![1usize];
    if machine > 1 {
        thread_counts.push(machine);
    }

    let mut records = Vec::new();
    for &tc in &thread_counts {
        eprintln!("threads = {tc}:");
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(tc)
            .build()
            .expect("pool build");
        pool.install(|| run_kernels(tc, warmup, samples, n, store.as_ref(), &mut records));
    }

    eprintln!("executor (process-level):");
    let exec_accounting = run_exec_rows(warmup, samples, &mut records);

    eprintln!("serve (session registry):");
    run_serve_rows(warmup, samples, &mut records);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"generated_by\": \"bench_runner (crates/bench)\",");
    let _ = writeln!(json, "  \"machine_threads\": {machine},");
    let _ = writeln!(
        json,
        "  \"simd_isa\": \"{:?}\",",
        kcenter_metric::kernels::active_isa()
    );
    // The full metrics-registry snapshot: every counter/gauge/histogram
    // the run touched, under their stable dotted names.
    let _ = writeln!(json, "  \"obs_metrics\": {},", kcenter_obs::render_json());
    let _ = writeln!(
        json,
        "  \"exec_warm_shard_writes\": {},",
        exec_accounting.warm_shard_writes
    );
    let _ = writeln!(
        json,
        "  \"exec_warm_shard_reuses\": {},",
        exec_accounting.warm_shard_reuses
    );
    let _ = writeln!(
        json,
        "  \"exec_warm_workers_spawned\": {},",
        exec_accounting.warm_workers_spawned
    );
    let _ = writeln!(
        json,
        "  \"note\": \"median over {samples} samples after {warmup} warmup runs, MAD outlier rejection; threads=1 is the sequential reference (inline execution, no pool overhead); *_force_scalar rows pin the scalar kernels via set_force_scalar, paired ABBA against the auto rows; a multi-thread scaling row appears only when the machine has >1 hardware thread; exec_* rows are paired ABBA too — warm_fleet reuses one persistent WorkerFleet across samples vs a fresh fleet per run, shards_reused serves content-addressed store shards (exec_warm_shard_writes pins 0 writes per warm sample) vs work-dir re-sharding\","
    );
    json.push_str("  \"records\": [\n");
    let lines: Vec<String> = records.iter().map(json_record).collect();
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("failed to write {out}: {e}"));
    eprintln!("wrote {} records to {out}", records.len());
}
