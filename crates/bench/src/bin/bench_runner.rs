//! Bench runner: measures the hot kernels (GMM, `OutliersCluster`, radius
//! search, `DistanceMatrix` construction, cached-vs-rebuilt radius-search
//! sweeps) on the 10k-point `Power` workload and writes machine-readable
//! `BENCH_pr3.json` — the perf trajectory's record.
//!
//! Every number comes from the criterion shim's measurement kernel
//! (warmup, N samples, MAD-based outlier rejection, median of survivors)
//! and is recorded per thread count: once with a 1-thread pool (the
//! sequential reference — identical code path to the old sequential shim)
//! and once with the machine's full parallelism when that differs.
//!
//! Usage: `bench_runner [--out PATH] [--samples N] [--warmup N] [--n N]`

use std::fmt::Write as _;

use criterion::{measure, measure_paired, Measurement};
use kcenter_bench::Dataset;
use kcenter_core::coreset::{build_weighted_coreset, CoresetSpec};
use kcenter_core::gmm::gmm_select;
use kcenter_core::outliers_cluster::{outliers_cluster, PointsOracle};
use kcenter_core::radius_search::{find_min_feasible_radius, solve_coreset_cached, SearchMode};
use kcenter_metric::{CachedOracle, DistanceMatrix, Euclidean, Metric, Point};

/// `Euclidean` with the proxy hooks forced back to their defaults: every
/// comparison pays the `sqrt`, i.e. the pre-PR code path. Benchmarked
/// alongside the proxied metric to record the sqrt-free before/after on
/// identical hardware and identical surrounding code.
struct SqrtEuclidean;

impl Metric<Point> for SqrtEuclidean {
    #[inline]
    fn distance(&self, a: &Point, b: &Point) -> f64 {
        Euclidean.distance(a, b)
    }
}

struct Record {
    kernel: &'static str,
    dataset: &'static str,
    /// Input size the kernel ran on (points for gmm/matrix, coreset size
    /// for outliers_cluster/radius_search).
    n: usize,
    /// Distance evaluations (or equivalent inner-loop items) per run, the
    /// denominator of `ns_per_op`.
    ops: u64,
    threads: usize,
    m: Measurement,
}

fn json_record(r: &Record) -> String {
    let median_ns = r.m.median.as_nanos();
    let mad_ns = r.m.mad.as_nanos();
    let ns_per_op = median_ns as f64 / r.ops.max(1) as f64;
    format!(
        "    {{\"kernel\": \"{}\", \"dataset\": \"{}\", \"n\": {}, \"threads\": {}, \
         \"median_ns\": {median_ns}, \"mad_ns\": {mad_ns}, \"samples\": {}, \
         \"rejected\": {}, \"ops\": {}, \"ns_per_op\": {ns_per_op:.3}}}",
        r.kernel, r.dataset, r.n, r.threads, r.m.samples, r.m.rejected, r.ops
    )
}

fn run_kernels(threads: usize, warmup: usize, samples: usize, n: usize, records: &mut Vec<Record>) {
    let (k, z, mu) = (20usize, 50usize, 8usize);
    let points = Dataset::Power.generate(n, 1);

    // Kernel 1: GMM farthest-first traversal, k = paper's Power k (100),
    // with the sqrt-free proxy metric and the forced-sqrt "before" path.
    let gmm_k = Dataset::Power.paper_k();
    let m = measure(warmup, samples, || {
        gmm_select(&points, &Euclidean, gmm_k, 0)
    });
    records.push(Record {
        kernel: "gmm_select",
        dataset: "Power",
        n,
        ops: (n * gmm_k) as u64,
        threads,
        m,
    });
    eprintln!(
        "  gmm_select/k={gmm_k}            {:>12.2?} ±{:.2?}",
        m.median, m.mad
    );

    let m = measure(warmup, samples, || {
        gmm_select(&points, &SqrtEuclidean, gmm_k, 0)
    });
    records.push(Record {
        kernel: "gmm_select_sqrt_before",
        dataset: "Power",
        n,
        ops: (n * gmm_k) as u64,
        threads,
        m,
    });
    eprintln!(
        "  gmm_select (sqrt before)    {:>12.2?} ±{:.2?}",
        m.median, m.mad
    );

    // Shared coreset fixture for the outlier kernels: τ = µ(k+z) = 560.
    let build = build_weighted_coreset(
        &points,
        &Euclidean,
        k + z,
        &CoresetSpec::Multiplier { mu },
        0,
    );
    let cpoints = build.coreset.points_only();
    let weights = build.coreset.weights();
    let t = cpoints.len();

    // Kernel 2: condensed distance-matrix construction over the coreset.
    let m = measure(warmup, samples, || {
        DistanceMatrix::build(&cpoints, &Euclidean)
    });
    records.push(Record {
        kernel: "distance_matrix_build",
        dataset: "Power",
        n: t,
        ops: (t * t / 2) as u64,
        threads,
        m,
    });
    eprintln!(
        "  distance_matrix/|T|={t}     {:>12.2?} ±{:.2?}",
        m.median, m.mad
    );

    let matrix = DistanceMatrix::build(&cpoints, &Euclidean);

    // Kernel 3: one OutliersCluster run (incremental ball weights).
    let (r_guess, eps) = (5.0f64, 0.25f64);
    let m = measure(warmup, samples, || {
        outliers_cluster(&matrix, &weights, k, r_guess, eps)
    });
    records.push(Record {
        kernel: "outliers_cluster",
        dataset: "Power",
        n: t,
        ops: (t * t) as u64,
        threads,
        m,
    });
    eprintln!(
        "  outliers_cluster/|T|={t}    {:>12.2?} ±{:.2?}",
        m.median, m.mad
    );

    // Kernel 3b: the same run through a metric-backed oracle, proxied vs
    // forced-sqrt — the sqrt-free before/after on the O(|T|²) scans.
    let proxied = PointsOracle::new(&cpoints, &Euclidean);
    let m = measure(warmup, samples, || {
        outliers_cluster(&proxied, &weights, k, r_guess, eps)
    });
    records.push(Record {
        kernel: "outliers_cluster_points_oracle",
        dataset: "Power",
        n: t,
        ops: (t * t) as u64,
        threads,
        m,
    });
    eprintln!(
        "  outliers_cluster (oracle)   {:>12.2?} ±{:.2?}",
        m.median, m.mad
    );

    let sqrt_oracle = PointsOracle::new(&cpoints, &SqrtEuclidean);
    let m = measure(warmup, samples, || {
        outliers_cluster(&sqrt_oracle, &weights, k, r_guess, eps)
    });
    records.push(Record {
        kernel: "outliers_cluster_points_oracle_sqrt_before",
        dataset: "Power",
        n: t,
        ops: (t * t) as u64,
        threads,
        m,
    });
    eprintln!(
        "  outliers_cluster (sqrt)     {:>12.2?} ±{:.2?}",
        m.median, m.mad
    );

    // Kernel 4: the full geometric-grid radius search.
    let m = measure(warmup, samples, || {
        find_min_feasible_radius(
            &matrix,
            &weights,
            k,
            z as u64,
            eps,
            SearchMode::GeometricGrid,
        )
    });
    records.push(Record {
        kernel: "radius_search_grid",
        dataset: "Power",
        n: t,
        ops: (t * t) as u64,
        threads,
        m,
    });
    eprintln!(
        "  radius_search/|T|={t}       {:>12.2?} ±{:.2?}",
        m.median, m.mad
    );

    // Kernel 5: the fig4-style sweep shape — repeated radius searches over
    // one coreset. "cached" shares a CachedOracle (the proxy matrix is
    // built once, outside the sweep's inner iterations); "rebuilt" prices
    // the coreset into a fresh matrix on every search, the pre-PR-3
    // behaviour of sweeps that called solve_coreset per configuration.
    // Samples interleave (ABBA) so slow machine drift cannot reorder the
    // medians of what is a ~5%-of-runtime difference.
    let shared = CachedOracle::new(cpoints.clone(), &Euclidean, usize::MAX);
    let _ = shared.matrix(); // warm: sweeps pay the build once, not per search
    let (m_cached, m_rebuilt) = measure_paired(
        warmup,
        samples,
        || {
            solve_coreset_cached(
                &shared,
                &weights,
                k,
                z as u64,
                eps,
                SearchMode::GeometricGrid,
            )
        },
        || {
            let fresh = CachedOracle::new(cpoints.clone(), &Euclidean, usize::MAX);
            solve_coreset_cached(
                &fresh,
                &weights,
                k,
                z as u64,
                eps,
                SearchMode::GeometricGrid,
            )
        },
    );
    records.push(Record {
        kernel: "radius_search_cached_oracle",
        dataset: "Power",
        n: t,
        ops: (t * t) as u64,
        threads,
        m: m_cached,
    });
    eprintln!(
        "  radius_search (cached)      {:>12.2?} ±{:.2?}",
        m_cached.median, m_cached.mad
    );
    assert_eq!(shared.build_count(), 1, "cached sweep must build once");
    records.push(Record {
        kernel: "radius_search_rebuilt_matrix",
        dataset: "Power",
        n: t,
        ops: (t * t) as u64,
        threads,
        m: m_rebuilt,
    });
    eprintln!(
        "  radius_search (rebuilt)     {:>12.2?} ±{:.2?}",
        m_rebuilt.median, m_rebuilt.mad
    );
}

fn main() {
    let mut out = "BENCH_pr3.json".to_string();
    let mut samples = 7usize;
    let mut warmup = 2usize;
    let mut n = 10_000usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--out" => out = value("--out"),
            "--samples" => samples = value("--samples").parse().expect("--samples: integer"),
            "--warmup" => warmup = value("--warmup").parse().expect("--warmup: integer"),
            "--n" => n = value("--n").parse().expect("--n: integer"),
            other => {
                eprintln!("unknown argument {other}; usage: [--out PATH] [--samples N] [--warmup N] [--n N]");
                std::process::exit(2);
            }
        }
    }

    let machine = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut thread_counts = vec![1usize];
    if machine > 1 {
        thread_counts.push(machine);
    }

    let mut records = Vec::new();
    for &tc in &thread_counts {
        eprintln!("threads = {tc}:");
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(tc)
            .build()
            .expect("pool build");
        pool.install(|| run_kernels(tc, warmup, samples, n, &mut records));
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"generated_by\": \"bench_runner (crates/bench)\",");
    let _ = writeln!(json, "  \"machine_threads\": {machine},");
    let _ = writeln!(
        json,
        "  \"note\": \"median over {samples} samples after {warmup} warmup runs, MAD outlier rejection; threads=1 is the sequential reference (inline execution, no pool overhead)\","
    );
    json.push_str("  \"records\": [\n");
    let lines: Vec<String> = records.iter().map(json_record).collect();
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("failed to write {out}: {e}"));
    eprintln!("wrote {} records to {out}", records.len());
}
