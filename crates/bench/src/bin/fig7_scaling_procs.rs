//! Figure 7: scalability with the number of processors of the randomized
//! MapReduce algorithm for k-center with z outliers.
//!
//! Paper setup: the size of the coreset union is fixed at 8·(16k + 6z)
//! (the µ = 8, ℓ = 16 point of Fig. 4) while ℓ varies in {1,2,4,8,16} with
//! per-partition coresets τ_ℓ = 8·(16k+6z)/ℓ, so all runs target the same
//! solution quality. Expected shape: the round-2 time (OutliersCluster on
//! the fixed-size union) is constant; the round-1 (coreset) time dominates
//! at small ℓ and drops *superlinearly* with ℓ, since each processor does
//! O(τ_ℓ · |S|/ℓ) work and τ_ℓ itself shrinks with ℓ.
//!
//! ```text
//! cargo run --release -p kcenter-bench --bin fig7_scaling_procs [-- --paper]
//! ```
//!
//! With `--real-procs`, "processors" stop being simulated: each ℓ value
//! spawns ℓ real worker OS processes through `kcenter-exec` (this binary
//! re-invoked in a hidden `exec-worker` mode) over sharded on-disk
//! inputs, and the table reports per-worker wall clock. Radii are
//! bit-identical to the simulated mode — the executor's determinism
//! guarantee — so the column worth watching is the cost of real process
//! isolation (spawn + shard I/O) against the parallel round-1 win.

use std::time::Duration;

use kcenter_bench::{report_cache_accounting, Args, Dataset, Stats};
use kcenter_core::coreset::CoresetSpec;
use kcenter_core::mapreduce_outliers::{mr_kcenter_outliers, MrOutliersConfig};
use kcenter_data::inject_outliers;
use kcenter_exec::{exec_mr_outliers, ExecConfig, MetricKind, WorkerCommand};
use kcenter_metric::Euclidean;

fn main() {
    // Hidden worker mode: `--real-procs` re-invokes this binary for each
    // round-1 partition.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("exec-worker") {
        std::process::exit(kcenter_exec::worker_main(raw.into_iter().skip(1)));
    }
    // Opt-in persistent matrix cache; see fig4_mr_outliers for the
    // cold/warm accounting contract.
    if let Some(store) = kcenter_store::install_from_env() {
        eprintln!("persistent cache: {}", store.dir().display());
    }
    let args = Args::parse();
    if args.real_procs {
        return real_procs_mode(&args);
    }
    let n = args.size(20_000, 200_000);
    let k = 20usize;
    let z = if args.paper { 200 } else { 50 };
    let union_target = 8 * (16 * k + 6 * z);
    let ells: [usize; 5] = [1, 2, 4, 8, 16];

    println!("=== Figure 7: randomized MR outliers — runtime vs processors ===");
    println!(
        "n = {n}, k = {k}, z = {z}, fixed union = {union_target}, reps = {}\n",
        args.reps
    );

    for dataset in Dataset::all() {
        println!("--- {} (k = {k}, z = {z}) ---", dataset.name());
        println!(
            "{:>4} {:>8} {:>8} {:>12} {:>18} {:>18} {:>12}",
            "l", "tau_l", "union", "radius", "coreset time (s)", "cluster time (s)", "speedup"
        );
        let mut reference: Option<f64> = None;
        for &ell in &ells {
            let tau = union_target / ell;
            let mut r1 = Vec::new();
            let mut r2 = Vec::new();
            let mut radii = Vec::new();
            let mut union = 0usize;
            for rep in 0..args.reps {
                let mut points = dataset.generate(n, rep as u64);
                inject_outliers(&mut points, z, 400 + rep as u64);
                let mut config =
                    MrOutliersConfig::randomized(k, z, ell, CoresetSpec::Fixed { tau });
                config.seed = rep as u64;
                let result =
                    mr_kcenter_outliers(&points, &Euclidean, &config).expect("valid configuration");
                r1.push(result.round1_time.as_secs_f64());
                r2.push(result.round2_time.as_secs_f64());
                radii.push(result.clustering.radius);
                union = union.max(result.union_size);
                assert!(result.union_size <= union_target + ell);
            }
            let s1 = Stats::from_samples(&r1);
            let s2 = Stats::from_samples(&r2);
            // Union size and mean radius are seed-deterministic: the
            // fig-golden suite pins them (the premise of the experiment is
            // that quality stays constant while ℓ varies — now visible).
            let mean_radius = Stats::from_samples(&radii).mean;
            let total = s1.mean + s2.mean;
            let speedup = match reference {
                None => {
                    reference = Some(total);
                    1.0
                }
                Some(t1) => t1 / total,
            };
            println!(
                "{ell:>4} {tau:>8} {union:>8} {mean_radius:>12.6} {:>14.2}±{:<3.2} {:>14.2}±{:<3.2} {speedup:>11.1}x",
                s1.mean, s1.ci95, s2.mean, s2.ci95
            );
        }
        println!("(cluster time ≈ constant; coreset time drops superlinearly in l)\n");
    }
    println!(
        "distance matrices built: {}",
        kcenter_metric::matrix_build_count()
    );
    report_cache_accounting();
}

/// The `--real-procs` variant: ℓ real worker OS processes per run, with
/// per-worker wall-clock accounting next to the usual figure columns.
fn real_procs_mode(args: &Args) {
    let n = args.size(20_000, 200_000);
    let k = 20usize;
    let z = if args.paper { 200 } else { 50 };
    let union_target = 8 * (16 * k + 6 * z);
    let ells: [usize; 5] = [1, 2, 4, 8, 16];
    let worker =
        WorkerCommand::current_exe(&["exec-worker"]).expect("current executable is resolvable");

    println!(
        "=== Figure 7 (real processes): randomized MR outliers — runtime vs worker processes ==="
    );
    println!(
        "n = {n}, k = {k}, z = {z}, fixed union = {union_target}, reps = {}\n",
        args.reps
    );

    for dataset in Dataset::all() {
        println!("--- {} (k = {k}, z = {z}) ---", dataset.name());
        println!(
            "{:>6} {:>8} {:>8} {:>12} {:>14} {:>14} {:>22} {:>12}",
            "procs",
            "tau_l",
            "union",
            "radius",
            "round1 (s)",
            "round2 (s)",
            "worker wall min/max",
            "speedup"
        );
        let mut reference: Option<f64> = None;
        for &ell in &ells {
            let tau = union_target / ell;
            let mut r1 = Vec::new();
            let mut r2 = Vec::new();
            let mut radii = Vec::new();
            let mut union = 0usize;
            let mut worker_min = Duration::MAX;
            let mut worker_max = Duration::ZERO;
            for rep in 0..args.reps {
                let mut points = dataset.generate(n, rep as u64);
                inject_outliers(&mut points, z, 400 + rep as u64);
                let mut config =
                    MrOutliersConfig::randomized(k, z, ell, CoresetSpec::Fixed { tau });
                config.seed = rep as u64;
                let exec = ExecConfig::new(worker.clone());
                let result = exec_mr_outliers(&points, MetricKind::Euclidean, &config, &exec)
                    .expect("multi-process run");
                r1.push(result.report.round1_time.as_secs_f64());
                r2.push(result.report.round2_time.as_secs_f64());
                radii.push(result.clustering.radius);
                union = union.max(result.report.union_size);
                for stat in &result.report.workers {
                    worker_min = worker_min.min(stat.wall);
                    worker_max = worker_max.max(stat.wall);
                }
                assert!(result.report.union_size <= union_target + ell);
            }
            let s1 = Stats::from_samples(&r1);
            let s2 = Stats::from_samples(&r2);
            let mean_radius = Stats::from_samples(&radii).mean;
            let total = s1.mean + s2.mean;
            let speedup = match reference {
                None => {
                    reference = Some(total);
                    1.0
                }
                Some(t1) => t1 / total,
            };
            let wall = format!(
                "{:.1}/{:.1}ms",
                worker_min.as_secs_f64() * 1e3,
                worker_max.as_secs_f64() * 1e3
            );
            println!(
                "{ell:>6} {tau:>8} {union:>8} {mean_radius:>12.6} {:>11.2}±{:<2.2} {:>11.2}±{:<2.2} {wall:>22} {speedup:>11.1}x",
                s1.mean, s1.ci95, s2.mean, s2.ci95,
            );
        }
        println!(
            "(per-worker wall is coordinator-measured spawn->exit: process startup + shard \
             load + build; round1 additionally includes shard writes and collection)\n"
        );
    }
    println!(
        "distance matrices built: {}",
        kcenter_metric::matrix_build_count()
    );
    report_cache_accounting();
}
