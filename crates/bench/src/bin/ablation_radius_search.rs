//! Ablation: geometric-grid vs exact-candidates radius search.
//!
//! The paper's binary search runs over all O(|T|²) pairwise distances
//! (avoiding their storage via streaming selection); our default walks a
//! (1+δ) geometric grid instead. This ablation measures, on identical
//! coresets: the radius each mode returns, the number of OutliersCluster
//! evaluations, and the wall-clock time — demonstrating both modes land
//! within the (1+δ) tolerance while the grid never materializes the
//! quadratic candidate set.
//!
//! With `KCENTER_CACHE_DIR` set, each coreset's proxy matrix is persisted
//! on the first (cold) run and *loaded* on every later (warm) run: the
//! cache-determinism CI job reruns this binary warm and asserts zero
//! matrix builds with bit-identical stdout. Pass `--deterministic` to
//! blank the wall-clock columns so stdout is exactly diffable; the
//! cache/build accounting goes to stderr either way.
//!
//! ```text
//! cargo run --release -p kcenter-bench --bin ablation_radius_search
//! ```

use std::time::Instant;

use kcenter_bench::{report_cache_accounting, Args, Dataset};
use kcenter_core::coreset::{build_weighted_coreset, CoresetSpec};
use kcenter_core::outliers_cluster::CmpMatrixRef;
use kcenter_core::radius_search::{find_min_feasible_radius, SearchMode};
use kcenter_data::{inject_outliers, shuffled};
use kcenter_metric::{CachedOracle, Euclidean, Point};

fn main() {
    let store = kcenter_store::install_from_env();
    if let Some(store) = &store {
        eprintln!("persistent cache: {}", store.dir().display());
    }
    let args = Args::parse();
    let n = args.size(20_000, 100_000);
    let (k, z, eps_hat) = (20usize, 50usize, 0.25f64);
    // Wall-clock formatting: real durations by default, a fixed-width "-"
    // under --deterministic so cold and warm runs print identical bytes.
    let fmt_time = |d: std::time::Duration| {
        if args.deterministic {
            "   -".to_string()
        } else {
            format!("{d:>4.0?}")
        }
    };

    println!("=== Ablation: radius search — geometric grid vs exact candidates ===");
    println!("n = {n}, k = {k}, z = {z}, eps_hat = {eps_hat}\n");
    println!(
        "{:<8} {:<10} {:>8} {:>10} {:>8} {:>10} {:>10}",
        "dataset", "coreset", "r_grid", "evals", "r_exact", "evals", "agree"
    );

    for dataset in Dataset::all() {
        for mu in [2usize, 8] {
            let mut points = dataset.generate(n, 1);
            inject_outliers(&mut points, z, 2);
            let points = shuffled(&points, 3);
            let build = build_weighted_coreset(
                &points,
                &Euclidean,
                k + z,
                &CoresetSpec::Multiplier { mu },
                0,
            );
            let coreset_points = build.coreset.points_only();
            let coreset_len = coreset_points.len();
            let weights = build.coreset.weights();
            // One shared oracle for both search modes: the coreset is
            // priced into a proxy matrix once, *before* the timers start
            // (this ablation compares search strategies, so neither mode
            // may be charged the one-time build), and both searches read
            // the resolved view with no per-lookup cache branch. With the
            // persistent store installed and warm, "priced" becomes
            // "loaded" and the build count stays zero.
            let oracle = CachedOracle::new(coreset_points, &Euclidean, usize::MAX);
            let view = CmpMatrixRef::<Point, Euclidean>::new(
                oracle.matrix().expect("threshold is unbounded"),
                oracle.metric(),
            );
            assert_eq!(
                oracle.build_count() + oracle.load_count(),
                1,
                "both modes must share one matrix (built once or loaded once)"
            );

            let start = Instant::now();
            let grid = find_min_feasible_radius(
                &view,
                &weights,
                k,
                z as u64,
                eps_hat,
                SearchMode::GeometricGrid,
            );
            let grid_time = start.elapsed();

            let start = Instant::now();
            let exact = find_min_feasible_radius(
                &view,
                &weights,
                k,
                z as u64,
                eps_hat,
                SearchMode::ExactCandidates,
            );
            let exact_time = start.elapsed();
            assert_eq!(
                oracle.build_count() + oracle.load_count(),
                1,
                "a search must never rebuild"
            );

            let delta = eps_hat / (3.0 + 4.0 * eps_hat);
            let agree = grid.radius <= exact.radius * (1.0 + delta) * (1.0 + delta);
            println!(
                "{:<8} {:<10} {:>8.3} {:>6} ({}) {:>8.3} {:>6} ({}) {:>6}",
                dataset.name(),
                format!("mu={mu} ({coreset_len})"),
                grid.radius,
                grid.evaluations,
                fmt_time(grid_time),
                exact.radius,
                exact.evaluations,
                fmt_time(exact_time),
                if agree { "yes" } else { "NO" },
            );
        }
    }
    println!("\n(agree = grid radius within (1+δ)² of exact; both verified feasible)");
    report_cache_accounting();
}
