//! Figure 3: streaming k-center without outliers — approximation ratio
//! (top) and throughput (bottom) versus space.
//!
//! CORESETSTREAM (ours) uses space µ·k, µ ∈ {1,2,4,8,16};
//! BASESTREAM (McCutchen–Khuller) uses space m·k, m ∈ {1,2,4,8,16}.
//! Expected shape: BASESTREAM uses space slightly better; CORESETSTREAM has
//! comparable ratio and often higher throughput.
//!
//! ```text
//! cargo run --release -p kcenter-bench --bin fig3_stream_kcenter [-- --paper]
//! ```

use kcenter_baselines::BaseStream;
use kcenter_bench::{Args, Dataset, RatioTable, Stats};
use kcenter_core::solution::radius;
use kcenter_core::streaming_kcenter::CoresetStream;
use kcenter_data::shuffled;
use kcenter_metric::Euclidean;
use kcenter_stream::run_stream;

fn main() {
    let args = Args::parse();
    let n = args.size(30_000, 500_000);
    let factors = [1usize, 2, 4, 8, 16];

    println!("=== Figure 3: streaming k-center — ratio and throughput vs space ===");
    println!("n = {n}, reps = {}\n", args.reps);

    for dataset in Dataset::all() {
        let k = dataset.paper_k();
        let mut table = RatioTable::new();
        let mut throughput: std::collections::BTreeMap<(String, String), Vec<f64>> =
            Default::default();
        for rep in 0..args.reps {
            let points = shuffled(&dataset.generate(n, rep as u64), 2000 + rep as u64);
            for &f in &factors {
                // CORESETSTREAM with τ = µ·k.
                let alg = CoresetStream::new(Euclidean, k, f * k);
                let (out, report) = run_stream(alg, points.iter().cloned());
                let r = radius(&points, &out.centers, &Euclidean);
                table.record("CoresetStream", &format!("space={}k", f), r);
                throughput
                    .entry(("CoresetStream".into(), format!("space={}k", f)))
                    .or_default()
                    .push(report.throughput().unwrap_or(f64::INFINITY));

                // BASESTREAM with m parallel scales.
                let alg = BaseStream::new(Euclidean, k, f);
                let (out, report) = run_stream(alg, points.iter().cloned());
                let r = radius(&points, &out.centers, &Euclidean);
                table.record("BaseStream", &format!("space={}k", f), r);
                throughput
                    .entry(("BaseStream".into(), format!("space={}k", f)))
                    .or_default()
                    .push(report.throughput().unwrap_or(f64::INFINITY));
            }
        }
        println!("--- {} (k = {k}) ---", dataset.name());
        let xs: Vec<String> = factors.iter().map(|f| format!("space={f}k")).collect();
        let series = vec!["CoresetStream".to_string(), "BaseStream".to_string()];
        println!("approximation ratio:");
        table.print("algorithm \\ space", &xs, &series);
        println!("throughput (points/s):");
        print!("{:<24}", "algorithm \\ space");
        for x in &xs {
            print!(" {x:>14}");
        }
        println!();
        for s in &series {
            print!("{s:<24}");
            for x in &xs {
                let stats = Stats::from_samples(&throughput[&(s.clone(), x.clone())]);
                print!(" {:>14.0}", stats.mean);
            }
            println!();
        }
        println!("best radius found: {:.4}\n", table.best_radius());
    }
}
