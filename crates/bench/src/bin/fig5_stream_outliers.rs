//! Figure 5: streaming k-center with z outliers — approximation ratio and
//! throughput versus space (log–log in the paper).
//!
//! CORESETOUTLIERS (ours) uses space µ(k+z), µ ∈ {1,2,4,8,16};
//! BASEOUTLIERS (McCutchen–Khuller) uses space m·k·z, m ∈ {1,2,4,8,16}.
//! Paper setup: k = 20, z = 200, shuffled streams. Expected shape: for
//! Higgs/Power CORESETOUTLIERS reaches better ratios with far less space
//! and >10× higher throughput; on Wiki both are good even at minimum space.
//!
//! ```text
//! cargo run --release -p kcenter-bench --bin fig5_stream_outliers [-- --paper]
//! ```

use kcenter_baselines::BaseOutliers;
use kcenter_bench::{Args, Dataset, RatioTable, Stats};
use kcenter_core::solution::radius_with_outliers;
use kcenter_core::streaming_outliers::CoresetOutliers;
use kcenter_data::{inject_outliers, shuffled};
use kcenter_metric::Euclidean;
use kcenter_stream::run_stream;

fn main() {
    let args = Args::parse();
    let n = args.size(20_000, 200_000);
    let k = 20usize;
    let z = if args.paper { 200 } else { 50 };
    let factors = [1usize, 2, 4, 8, 16];

    println!("=== Figure 5: streaming k-center with outliers — ratio and throughput vs space ===");
    println!("n = {n}, k = {k}, z = {z}, reps = {}\n", args.reps);

    for dataset in Dataset::all() {
        let mut table = RatioTable::new();
        let mut throughput: std::collections::BTreeMap<(String, String), Vec<f64>> =
            Default::default();
        let mut space: std::collections::BTreeMap<(String, String), usize> = Default::default();
        for rep in 0..args.reps {
            let mut points = dataset.generate(n, rep as u64);
            inject_outliers(&mut points, z, 9_000 + rep as u64);
            let points = shuffled(&points, 3_000 + rep as u64);
            for &f in &factors {
                // CORESETOUTLIERS with τ = µ(k+z).
                let alg = CoresetOutliers::new(Euclidean, k, z, f * (k + z), 0.25);
                let (out, report) = run_stream(alg, points.iter().cloned());
                let r = radius_with_outliers(&points, &out.centers, z, &Euclidean);
                let key = format!("f={f:<2}");
                table.record("CoresetOutliers", &key, r);
                throughput
                    .entry(("CoresetOutliers".into(), key.clone()))
                    .or_default()
                    .push(report.throughput().unwrap_or(f64::INFINITY));
                space.insert(("CoresetOutliers".into(), key), f * (k + z));

                // BASEOUTLIERS with m = f parallel k·z-space instances.
                let alg = BaseOutliers::new(Euclidean, k, z, f);
                let (out, report) = run_stream(alg, points.iter().cloned());
                let r = radius_with_outliers(&points, &out.centers, z, &Euclidean);
                let key = format!("f={f:<2}");
                table.record("BaseOutliers", &key, r);
                throughput
                    .entry(("BaseOutliers".into(), key.clone()))
                    .or_default()
                    .push(report.throughput().unwrap_or(f64::INFINITY));
                space.insert(("BaseOutliers".into(), key), f * k * z);
            }
        }
        println!("--- {} (k = {k}, z = {z}) ---", dataset.name());
        let xs: Vec<String> = factors.iter().map(|f| format!("f={f:<2}")).collect();
        let series = vec!["CoresetOutliers".to_string(), "BaseOutliers".to_string()];
        println!("space (points)  [CoresetOutliers: µ(k+z); BaseOutliers: m·k·z]:");
        print!("{:<24}", "algorithm \\ factor");
        for x in &xs {
            print!(" {x:>14}");
        }
        println!();
        for s in &series {
            print!("{s:<24}");
            for x in &xs {
                print!(" {:>14}", space[&(s.clone(), x.clone())]);
            }
            println!();
        }
        println!("approximation ratio:");
        table.print("algorithm \\ factor", &xs, &series);
        println!("throughput (points/s):");
        print!("{:<24}", "algorithm \\ factor");
        for x in &xs {
            print!(" {x:>14}");
        }
        println!();
        for s in &series {
            print!("{s:<24}");
            for x in &xs {
                let stats = Stats::from_samples(&throughput[&(s.clone(), x.clone())]);
                print!(" {:>14.0}", stats.mean);
            }
            println!();
        }
        println!("best radius found: {:.4}\n", table.best_radius());
    }
}
