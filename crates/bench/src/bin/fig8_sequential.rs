//! Figure 8: sequential algorithms on samples — running time (log scale in
//! the paper) and radius of CHARIKARETAL vs the coreset algorithm at
//! µ ∈ {1,2,4,8} (µ = 1 ≡ MALKOMESETAL).
//!
//! Paper setup: 10k-point samples of each dataset + 200 injected outliers,
//! k = 20, z = 200, inputs shuffled per repetition. Expected shape: the
//! coreset algorithms are ~10× faster; µ = 1 gives a clearly worse radius;
//! µ ≥ 2 matches (sometimes beats) CHARIKARETAL's radius.
//!
//! ```text
//! cargo run --release -p kcenter-bench --bin fig8_sequential [-- --paper]
//! ```

use std::time::Instant;

use kcenter_baselines::charikar_kcenter_outliers;
use kcenter_bench::{Args, Dataset, Stats};
use kcenter_core::sequential::{sequential_kcenter_outliers, SequentialOutliersConfig};
use kcenter_data::{inject_outliers, shuffled};
use kcenter_metric::Euclidean;

fn main() {
    let args = Args::parse();
    let n = args.size(2_500, 10_000);
    let k = 20usize;
    let z = if args.paper { 200 } else { 50 };
    let mus = [1usize, 2, 4, 8];

    println!("=== Figure 8: sequential comparison on {n}-point samples ===");
    println!(
        "k = {k}, z = {z}, reps = {} (paper: 10k samples, z = 200)\n",
        args.reps
    );

    for dataset in Dataset::all() {
        println!("--- {} (k = {k}, z = {z}) ---", dataset.name());
        println!("{:<26} {:>14} {:>16}", "algorithm", "radius", "time (s)");

        let mut radii: Vec<Vec<f64>> = vec![Vec::new(); mus.len() + 1];
        let mut times: Vec<Vec<f64>> = vec![Vec::new(); mus.len() + 1];
        for rep in 0..args.reps {
            let mut points = dataset.generate(n, rep as u64);
            inject_outliers(&mut points, z, 500 + rep as u64);
            let points = shuffled(&points, 600 + rep as u64);

            let start = Instant::now();
            let charikar =
                charikar_kcenter_outliers(&points, &Euclidean, k, z).expect("valid input");
            times[0].push(start.elapsed().as_secs_f64());
            radii[0].push(charikar.clustering.radius);

            for (i, &mu) in mus.iter().enumerate() {
                let mut config = SequentialOutliersConfig::new(k, z, mu);
                config.seed = rep as u64;
                let start = Instant::now();
                let result =
                    sequential_kcenter_outliers(&points, &Euclidean, &config).expect("valid input");
                times[i + 1].push(start.elapsed().as_secs_f64());
                radii[i + 1].push(result.clustering.radius);
            }
        }

        let labels: Vec<String> = std::iter::once("CharikarEtAl".to_string())
            .chain(mus.iter().map(|&mu| {
                if mu == 1 {
                    "MalkomesEtAl (mu=1)".to_string()
                } else {
                    format!("Ours (mu={mu})")
                }
            }))
            .collect();
        for (i, label) in labels.iter().enumerate() {
            let r = Stats::from_samples(&radii[i]);
            let t = Stats::from_samples(&times[i]);
            println!(
                "{label:<26} {:>8.3}±{:<5.3} {:>10.3}±{:<5.3}",
                r.mean, r.ci95, t.mean, t.ci95
            );
        }
        println!();
    }
}
