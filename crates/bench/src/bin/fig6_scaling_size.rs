//! Figure 6: scalability with input size of the randomized MapReduce
//! algorithm for k-center with z outliers.
//!
//! Paper setup: synthetic SMOTE-inflated instances ×h, h ∈ {1,25,50,100};
//! k = 20, z = 200, ℓ = 16, coresets 8·(k + 6z/ℓ). Expected shape: running
//! time linear in the input size (both axes log in the paper).
//!
//! ```text
//! cargo run --release -p kcenter-bench --bin fig6_scaling_size [-- --paper]
//! ```

use std::time::Instant;

use kcenter_bench::{Args, Dataset, Stats};
use kcenter_core::coreset::CoresetSpec;
use kcenter_core::mapreduce_outliers::{mr_kcenter_outliers, MrOutliersConfig};
use kcenter_data::{inflate, inject_outliers};
use kcenter_metric::Euclidean;

fn main() {
    let args = Args::parse();
    let base_n = args.size(4_000, 40_000);
    let (k, ell) = (20usize, 16usize);
    let z = if args.paper { 200 } else { 50 };
    let factors: [usize; 4] = [1, 25, 50, 100];

    println!("=== Figure 6: randomized MR outliers — runtime vs input size ===");
    println!(
        "base n = {base_n}, inflation h ∈ {factors:?}, k = {k}, z = {z}, l = {ell}, reps = {}\n",
        args.reps
    );

    for dataset in Dataset::all() {
        println!("--- {} (k = {k}, z = {z}) ---", dataset.name());
        println!(
            "{:>6} {:>12} {:>14} {:>14} {:>14} {:>14}",
            "h", "points", "total (s)", "round1 (s)", "round2 (s)", "round1 / h"
        );
        let base = dataset.generate(base_n, 1);
        for &h in &factors {
            let mut totals = Vec::new();
            let mut r1s = Vec::new();
            let mut r2s = Vec::new();
            for rep in 0..args.reps {
                let mut points = if h == 1 {
                    base.clone()
                } else {
                    inflate(&base, base_n * h, 100 + rep as u64)
                };
                inject_outliers(&mut points, z, 200 + rep as u64);
                let mut config =
                    MrOutliersConfig::randomized(k, z, ell, CoresetSpec::Multiplier { mu: 8 });
                config.seed = rep as u64;
                let start = Instant::now();
                let result =
                    mr_kcenter_outliers(&points, &Euclidean, &config).expect("valid configuration");
                totals.push(start.elapsed().as_secs_f64());
                r1s.push(result.round1_time.as_secs_f64());
                r2s.push(result.round2_time.as_secs_f64());
                assert!(result.clustering.k() <= k);
            }
            let total = Stats::from_samples(&totals);
            let r1 = Stats::from_samples(&r1s);
            let r2 = Stats::from_samples(&r2s);
            println!(
                "{h:>6} {:>12} {:>11.2}±{:<2.1} {:>14.2} {:>14.2} {:>14.4}",
                base_n * h + z,
                total.mean,
                total.ci95,
                r1.mean,
                r2.mean,
                r1.mean / h as f64,
            );
        }
        println!(
            "(round 2 works on a fixed-size union ⇒ constant; round 1 scales linearly in h)\n"
        );
    }
}
