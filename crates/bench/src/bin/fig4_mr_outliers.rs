//! Figure 4: MapReduce k-center with z outliers — approximation ratio (top)
//! and running time (bottom) for the deterministic vs randomized variants.
//!
//! Paper setup: k = 20, z = 200, ℓ = 16, coresets µ(k+z) (deterministic) /
//! µ(k + 6z/ℓ) (randomized), µ ∈ {1,2,4,8}; outliers injected at 100·r_MEB
//! and partitioned *adversarially* (all in one partition). µ = 1
//! deterministic is the MalkomesEtAl baseline. Expected shape: µ = 1
//! deterministic is bad (outliers crowd out the coreset), randomized is
//! robust at all µ and much cheaper; quality improves with µ.
//!
//! ```text
//! cargo run --release -p kcenter-bench --bin fig4_mr_outliers [-- --paper]
//! ```

use std::time::Instant;

use kcenter_bench::{report_cache_accounting, Args, Dataset, RatioTable, Stats};
use kcenter_core::coreset::CoresetSpec;
use kcenter_core::mapreduce_outliers::{mr_kcenter_outliers, MrOutliersConfig, MrPartitioning};
use kcenter_data::inject_outliers;
use kcenter_metric::Euclidean;

fn main() {
    // Opt-in persistent matrix cache (KCENTER_CACHE_DIR): round 2 of every
    // MR run below then loads previously priced coreset matrices instead
    // of rebuilding them. Only the *"distance matrices built"* accounting
    // line below depends on cache state; every scientific number is
    // bit-identical cold or warm (enforced by the cache-determinism CI
    // job).
    if let Some(store) = kcenter_store::install_from_env() {
        eprintln!("persistent cache: {}", store.dir().display());
    }
    let args = Args::parse();
    let n = args.size(20_000, 200_000);
    let (k, ell) = (20usize, 16usize);
    let z = if args.paper { 200 } else { 50 };
    let mus = [1usize, 2, 4, 8];

    println!(
        "=== Figure 4: MR k-center with outliers — det vs randomized, adversarial partition ==="
    );
    println!(
        "n = {n}, k = {k}, z = {z}, l = {ell}, reps = {}\n",
        args.reps
    );

    for dataset in Dataset::all() {
        let mut table = RatioTable::new();
        let mut times: std::collections::BTreeMap<(String, String), Vec<f64>> = Default::default();
        for rep in 0..args.reps {
            let mut points = dataset.generate(n, rep as u64);
            // The paper's MR experiments consume the datasets in file order,
            // which is spatially correlated — chunked partitions hold
            // *distinct* regions, so a partition whose coreset is crowded
            // out by outliers loses representation the other partitions do
            // not replace. Emulate that correlated order by sorting along
            // the first coordinate before injecting the outliers.
            points.sort_by(|a, b| a[0].partial_cmp(&b[0]).expect("finite coords"));
            let report = inject_outliers(&mut points, z, 7_000 + rep as u64);
            for &mu in &mus {
                // Deterministic, adversarial partitioning.
                let mut det =
                    MrOutliersConfig::deterministic(k, z, ell, CoresetSpec::Multiplier { mu });
                det.partitioning = MrPartitioning::Adversarial {
                    special: report.outlier_indices.clone(),
                };
                det.seed = rep as u64;
                let start = Instant::now();
                let result =
                    mr_kcenter_outliers(&points, &Euclidean, &det).expect("valid configuration");
                let elapsed = start.elapsed().as_secs_f64();
                table.record(
                    "deterministic",
                    &format!("mu={mu}"),
                    result.clustering.radius,
                );
                times
                    .entry(("deterministic".into(), format!("mu={mu}")))
                    .or_default()
                    .push(elapsed);

                // Randomized: random partition, coreset base k + 6z/l.
                let mut rand =
                    MrOutliersConfig::randomized(k, z, ell, CoresetSpec::Multiplier { mu });
                rand.seed = rep as u64;
                let start = Instant::now();
                let result =
                    mr_kcenter_outliers(&points, &Euclidean, &rand).expect("valid configuration");
                let elapsed = start.elapsed().as_secs_f64();
                table.record("randomized", &format!("mu={mu}"), result.clustering.radius);
                times
                    .entry(("randomized".into(), format!("mu={mu}")))
                    .or_default()
                    .push(elapsed);
            }
        }
        println!("--- {} (k = {k}, z = {z}) ---", dataset.name());
        let xs: Vec<String> = mus.iter().map(|m| format!("mu={m}")).collect();
        let series = vec!["deterministic".to_string(), "randomized".to_string()];
        println!("approximation ratio (deterministic mu=1 ≡ MalkomesEtAl):");
        table.print("variant \\ coreset", &xs, &series);
        println!("running time (s):");
        print!("{:<24}", "variant \\ coreset");
        for x in &xs {
            print!(" {x:>14}");
        }
        println!();
        for s in &series {
            print!("{s:<24}");
            for x in &xs {
                let stats = Stats::from_samples(&times[&(s.clone(), x.clone())]);
                print!(" {:>14.2}", stats.mean);
            }
            println!();
        }
        println!("best radius found: {:.4}\n", table.best_radius());
    }
    // One matrix per radius search, never more: sweeps that re-search a
    // shared coreset reuse its CachedOracle matrix (pinned by fig_golden).
    println!(
        "distance matrices built: {}",
        kcenter_metric::matrix_build_count()
    );
    report_cache_accounting();
}
