//! Ablation: the theoretical ε-stopping rule vs fixed-size coresets.
//!
//! DESIGN.md calls out the choice between the paper's analysis form
//! (`CoresetSpec::EpsStop`: run GMM past `k` until the radius drops to
//! `(ε/2)·r_k`) and its experimental form (`CoresetSpec::Multiplier`:
//! τ = µ·k). This ablation measures, per dataset: the coreset size the
//! stopping rule actually selects for a range of ε, and the radius each
//! achieves — showing the size/quality frontier is the same object the
//! µ-sweep walks.
//!
//! ```text
//! cargo run --release -p kcenter-bench --bin ablation_stopping_rule
//! ```

use kcenter_bench::{Args, Dataset};
use kcenter_core::coreset::CoresetSpec;
use kcenter_core::mapreduce_kcenter::{mr_kcenter, MrKCenterConfig};
use kcenter_data::shuffled;
use kcenter_metric::Euclidean;

fn main() {
    let args = Args::parse();
    let n = args.size(20_000, 200_000);
    let ell = 8usize;

    println!("=== Ablation: ε-stopping rule vs fixed τ = µ·k coresets ===");
    println!("n = {n}, l = {ell}\n");

    for dataset in Dataset::all() {
        let k = dataset.paper_k();
        let points = shuffled(&dataset.generate(n, 1), 2);
        println!("--- {} (k = {k}) ---", dataset.name());
        println!("{:<22} {:>12} {:>12}", "spec", "union size", "radius");

        for eps in [1.0f64, 0.5, 0.25] {
            let result = mr_kcenter(
                &points,
                &Euclidean,
                &MrKCenterConfig {
                    k,
                    ell,
                    coreset: CoresetSpec::EpsStop { eps },
                    seed: 1,
                },
            )
            .expect("valid configuration");
            println!(
                "{:<22} {:>12} {:>12.4}",
                format!("EpsStop eps={eps}"),
                result.union_size,
                result.clustering.radius
            );
        }
        for mu in [1usize, 2, 4, 8] {
            let result = mr_kcenter(
                &points,
                &Euclidean,
                &MrKCenterConfig {
                    k,
                    ell,
                    coreset: CoresetSpec::Multiplier { mu },
                    seed: 1,
                },
            )
            .expect("valid configuration");
            println!(
                "{:<22} {:>12} {:>12.4}",
                format!("Fixed mu={mu}"),
                result.union_size,
                result.clustering.radius
            );
        }
        println!();
    }
}
