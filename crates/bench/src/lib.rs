#![warn(missing_docs)]
//! Shared experiment harness for the figure-reproduction binaries.
//!
//! The paper's methodology (§5, "Experimental setting"): every number is an
//! average over ≥ 10 runs with 95% confidence intervals; solution quality is
//! the *approximation ratio*, "estimated empirically as the ratio between
//! the radius of the returned clustering and the best radius ever found
//! across all experiments with the same dataset and parameter
//! configuration". This crate provides exactly that machinery:
//!
//! * [`Dataset`] — the three dataset stand-ins with their paper `k` values;
//! * [`Stats`] — mean and 95% CI over repetitions;
//! * [`RatioTable`] — collects `(series, x, radius)` samples and prints
//!   ratios against the best radius found for the dataset;
//! * [`Args`] — minimal CLI parsing (`--paper`, `--reps`, `--n`) so every
//!   figure binary defaults to laptop-scale parameters and can be promoted
//!   to the paper's scale with one flag.

use std::collections::BTreeMap;
use std::time::Duration;

use kcenter_data::{higgs_like, power_like, wiki_like};
use kcenter_metric::Point;

/// The paper's three evaluation datasets (synthetic stand-ins; DESIGN.md §4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dataset {
    /// Higgs: 7-dim, moderately clustered; paper `k = 50`.
    Higgs,
    /// Power: 7-dim, many compact regimes; paper `k = 100`.
    Power,
    /// Wiki: 50-dim word2vec-like; paper `k = 60`.
    Wiki,
}

impl Dataset {
    /// All three datasets in the paper's presentation order.
    pub fn all() -> [Dataset; 3] {
        [Dataset::Higgs, Dataset::Power, Dataset::Wiki]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Higgs => "Higgs",
            Dataset::Power => "Power",
            Dataset::Wiki => "Wiki",
        }
    }

    /// The `k` the paper uses for the no-outlier experiments (Figs. 2–3).
    pub fn paper_k(self) -> usize {
        match self {
            Dataset::Higgs => 50,
            Dataset::Power => 100,
            Dataset::Wiki => 60,
        }
    }

    /// Generates `n` points with the given seed.
    pub fn generate(self, n: usize, seed: u64) -> Vec<Point> {
        match self {
            Dataset::Higgs => higgs_like(n, seed),
            Dataset::Power => power_like(n, seed),
            Dataset::Wiki => wiki_like(n, seed),
        }
    }
}

/// Mean and spread over repeated measurements.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95% confidence interval (normal approximation).
    pub ci95: f64,
    /// Number of samples.
    pub n: usize,
}

impl Stats {
    /// Computes mean ± CI from samples.
    pub fn from_samples(samples: &[f64]) -> Stats {
        let n = samples.len();
        if n == 0 {
            return Stats::default();
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Stats { mean, ci95: 0.0, n };
        }
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n as f64 - 1.0);
        Stats {
            mean,
            ci95: 1.96 * (var / n as f64).sqrt(),
            n,
        }
    }
}

/// Collects radius samples per `(series, x)` and reports approximation
/// ratios against the best radius ever observed (the paper's estimator).
#[derive(Default)]
pub struct RatioTable {
    samples: BTreeMap<(String, String), Vec<f64>>,
    best: f64,
}

impl RatioTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RatioTable {
            samples: BTreeMap::new(),
            best: f64::INFINITY,
        }
    }

    /// Records one measured radius for a `(series, x)` cell.
    pub fn record(&mut self, series: &str, x: &str, radius: f64) {
        self.samples
            .entry((series.to_string(), x.to_string()))
            .or_default()
            .push(radius);
        if radius < self.best {
            self.best = radius;
        }
    }

    /// The best radius observed across all cells.
    pub fn best_radius(&self) -> f64 {
        self.best
    }

    /// Ratio statistics for one cell, if recorded.
    pub fn ratio(&self, series: &str, x: &str) -> Option<Stats> {
        let samples = self.samples.get(&(series.to_string(), x.to_string()))?;
        let ratios: Vec<f64> = samples.iter().map(|r| r / self.best).collect();
        Some(Stats::from_samples(&ratios))
    }

    /// Prints the table: one row per series, one column per x value.
    pub fn print(&self, row_label: &str, xs: &[String], series: &[String]) {
        print!("{row_label:<24}");
        for x in xs {
            print!(" {x:>14}");
        }
        println!();
        for s in series {
            print!("{s:<24}");
            for x in xs {
                match self.ratio(s, x) {
                    Some(stats) => print!(" {:>8.3}±{:<5.3}", stats.mean, stats.ci95),
                    None => print!(" {:>14}", "-"),
                }
            }
            println!();
        }
    }
}

/// Prints the process-wide matrix-pricing/persistent-store accounting to
/// **stderr** in a fixed machine-parsable shape:
///
/// ```text
/// cache-accounting: builds=24 hits=0 misses=24
/// ```
///
/// Stderr, deliberately: the counters depend on the cache's state (cold
/// vs warm), while the binaries' *stdout* must stay a pure function of
/// the seeded inputs so the cache-determinism CI jobs can diff it
/// bit-for-bit. `tests/fig_golden.rs` parses this line to assert a warm
/// run served every matrix from the store (`builds=0`, `hits>0`).
pub fn report_cache_accounting() {
    let (builds, hits, misses) = (
        kcenter_metric::matrix_build_count(),
        kcenter_metric::store_hit_count(),
        kcenter_metric::store_miss_count(),
    );
    eprintln!(
        "{}",
        kcenter_obs::cache_accounting_line(builds, hits, misses)
    );
    // The same counters as a trace event, so a `KCENTER_TRACE` run of a
    // figure binary leaves a record; trace bytes never touch stdout/stderr.
    kcenter_obs::event(
        "bench.cache_accounting",
        &[
            ("builds".to_string(), builds.to_string()),
            ("hits".to_string(), hits.to_string()),
            ("misses".to_string(), misses.to_string()),
        ],
    );
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1_000.0)
    }
}

/// Minimal CLI arguments shared by the figure binaries.
#[derive(Clone, Debug)]
pub struct Args {
    /// Use the paper's full-scale parameters.
    pub paper: bool,
    /// Repetitions per configuration (paper: ≥ 10).
    pub reps: usize,
    /// Dataset size override.
    pub n: Option<usize>,
    /// Suppress wall-clock columns so stdout is a pure function of the
    /// seeded inputs — the mode the cache-determinism CI jobs diff
    /// bit-for-bit across cold/warm cache and thread counts.
    pub deterministic: bool,
    /// Run on real worker OS processes instead of the in-process engine
    /// (honoured by `fig7_scaling_procs`, which then reports per-worker
    /// wall clock).
    pub real_procs: bool,
}

impl Args {
    /// Parses `--paper`, `--reps N`, `--n N`, `--deterministic`,
    /// `--real-procs` from `std::env::args`. Unknown arguments abort with
    /// a usage message.
    pub fn parse() -> Args {
        let mut args = Args {
            paper: false,
            reps: 3,
            n: None,
            deterministic: false,
            real_procs: false,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--paper" => {
                    args.paper = true;
                    args.reps = 10;
                }
                "--deterministic" => args.deterministic = true,
                "--real-procs" => args.real_procs = true,
                "--reps" => {
                    let v = iter.next().expect("--reps needs a value");
                    args.reps = v.parse().expect("--reps must be an integer");
                }
                "--n" => {
                    let v = iter.next().expect("--n needs a value");
                    args.n = Some(v.parse().expect("--n must be an integer"));
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--paper] [--reps N] [--n N] [--deterministic] [--real-procs]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!(
                        "unknown argument {other}; usage: [--paper] [--reps N] [--n N] [--deterministic] [--real-procs]"
                    );
                    std::process::exit(2);
                }
            }
        }
        args
    }

    /// Dataset size: explicit `--n`, else `paper_n` with `--paper`, else
    /// the laptop-scale `default_n`.
    pub fn size(&self, default_n: usize, paper_n: usize) -> usize {
        self.n
            .unwrap_or(if self.paper { paper_n } else { default_n })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_mean_and_ci() {
        let s = Stats::from_samples(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(s.ci95 > 0.0);
        assert_eq!(s.n, 3);
        let single = Stats::from_samples(&[5.0]);
        assert_eq!(single.mean, 5.0);
        assert_eq!(single.ci95, 0.0);
        assert_eq!(Stats::from_samples(&[]).n, 0);
    }

    #[test]
    fn ratio_table_tracks_best() {
        let mut t = RatioTable::new();
        t.record("a", "1", 2.0);
        t.record("a", "1", 2.2);
        t.record("b", "1", 1.0);
        assert_eq!(t.best_radius(), 1.0);
        let ra = t.ratio("a", "1").unwrap();
        assert!((ra.mean - 2.1).abs() < 1e-9);
        let rb = t.ratio("b", "1").unwrap();
        assert_eq!(rb.mean, 1.0);
        assert!(t.ratio("c", "1").is_none());
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_millis(1500)), "1.50s");
        assert_eq!(fmt_duration(Duration::from_micros(2_300)), "2.3ms");
    }

    #[test]
    fn datasets_have_paper_parameters() {
        assert_eq!(Dataset::Higgs.paper_k(), 50);
        assert_eq!(Dataset::Power.paper_k(), 100);
        assert_eq!(Dataset::Wiki.paper_k(), 60);
        for d in Dataset::all() {
            assert_eq!(d.generate(100, 1).len(), 100);
        }
    }
}
