//! Criterion microbenches for `OutliersCluster` — including the ablation
//! of incremental ball-weight maintenance (O(|T|²)) against the textbook
//! O(k·|T|²) recomputation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kcenter_bench::Dataset;
use kcenter_core::coreset::{build_weighted_coreset, CoresetSpec};
use kcenter_core::outliers_cluster::{outliers_cluster, outliers_cluster_naive};
use kcenter_metric::{DistanceMatrix, Euclidean, Point};

fn coreset_fixture(size_mu: usize) -> (Vec<Point>, Vec<u64>) {
    let points = Dataset::Higgs.generate(20_000, 3);
    let build = build_weighted_coreset(
        &points,
        &Euclidean,
        70,
        &CoresetSpec::Multiplier { mu: size_mu },
        0,
    );
    (build.coreset.points_only(), build.coreset.weights())
}

fn bench_incremental_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("outliers_cluster");
    group.sample_size(10);
    let (points, weights) = coreset_fixture(8); // |T| = 560
    let matrix = DistanceMatrix::build(&points, &Euclidean);
    let (k, r, eps) = (20usize, 5.0f64, 0.25f64);

    group.bench_function(BenchmarkId::new("incremental", points.len()), |b| {
        b.iter(|| outliers_cluster(black_box(&matrix), &weights, k, r, eps));
    });
    group.bench_function(BenchmarkId::new("naive", points.len()), |b| {
        b.iter(|| outliers_cluster_naive(black_box(&matrix), &weights, k, r, eps));
    });
    group.finish();
}

fn bench_matrix_vs_points_oracle(c: &mut Criterion) {
    use kcenter_core::outliers_cluster::PointsOracle;
    let mut group = c.benchmark_group("distance_oracle");
    group.sample_size(10);
    let (points, weights) = coreset_fixture(8);
    let matrix = DistanceMatrix::build(&points, &Euclidean);
    let oracle = PointsOracle::new(&points, &Euclidean);
    let (k, r, eps) = (20usize, 5.0f64, 0.25f64);

    group.bench_function("cached_matrix", |b| {
        b.iter(|| outliers_cluster(black_box(&matrix), &weights, k, r, eps));
    });
    group.bench_function("on_the_fly", |b| {
        b.iter(|| outliers_cluster(black_box(&oracle), &weights, k, r, eps));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_incremental_vs_naive,
    bench_matrix_vs_points_oracle
);
criterion_main!(benches);
