//! Criterion microbenches for the streaming algorithms' per-point cost
//! (the throughput axis of Figs. 3 and 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use kcenter_baselines::{BaseOutliers, BaseStream};
use kcenter_bench::Dataset;
use kcenter_core::streaming_coreset::WeightedDoublingCoreset;
use kcenter_core::streaming_outliers::CoresetOutliers;
use kcenter_metric::Euclidean;
use kcenter_stream::run_stream;

fn bench_doubling_coreset(c: &mut Criterion) {
    let mut group = c.benchmark_group("doubling_coreset_pass");
    group.sample_size(10);
    let points = Dataset::Higgs.generate(20_000, 4);
    group.throughput(Throughput::Elements(points.len() as u64));
    for tau in [70usize, 280, 560] {
        group.bench_with_input(BenchmarkId::new("tau", tau), &tau, |b, &tau| {
            b.iter(|| {
                let alg = WeightedDoublingCoreset::new(Euclidean, tau);
                run_stream(alg, black_box(points.iter().cloned())).1
            });
        });
    }
    group.finish();
}

fn bench_streaming_contenders(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_outliers_pass");
    group.sample_size(10);
    let points = Dataset::Power.generate(10_000, 5);
    let (k, z) = (20usize, 20usize);
    group.throughput(Throughput::Elements(points.len() as u64));

    group.bench_function("CoresetOutliers_mu4", |b| {
        b.iter(|| {
            let alg = CoresetOutliers::new(Euclidean, k, z, 4 * (k + z), 0.25);
            run_stream(alg, black_box(points.iter().cloned())).1
        });
    });
    group.bench_function("BaseOutliers_m1", |b| {
        b.iter(|| {
            let alg = BaseOutliers::new(Euclidean, k, z, 1);
            run_stream(alg, black_box(points.iter().cloned())).1
        });
    });
    group.bench_function("BaseStream_m4", |b| {
        b.iter(|| {
            let alg = BaseStream::new(Euclidean, k, 4);
            run_stream(alg, black_box(points.iter().cloned())).1
        });
    });
    group.finish();
}

criterion_group!(benches, bench_doubling_coreset, bench_streaming_contenders);
criterion_main!(benches);
