//! Criterion microbenches for GMM (the coreset-construction kernel).
//!
//! Round 1 of every MapReduce algorithm is dominated by GMM's O(n·τ)
//! distance scans; these benches size that kernel across dataset dims and
//! coreset sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use kcenter_bench::Dataset;
use kcenter_core::coreset::{build_weighted_coreset, CoresetSpec};
use kcenter_core::gmm::gmm_select;
use kcenter_metric::Euclidean;

fn bench_gmm_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("gmm_select");
    for dataset in [Dataset::Higgs, Dataset::Wiki] {
        let points = dataset.generate(10_000, 1);
        for k in [20usize, 80] {
            group.throughput(Throughput::Elements(points.len() as u64));
            group.bench_with_input(BenchmarkId::new(dataset.name(), k), &k, |b, &k| {
                b.iter(|| gmm_select(black_box(&points), &Euclidean, k, 0));
            });
        }
    }
    group.finish();
}

fn bench_weighted_coreset(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted_coreset");
    group.sample_size(10);
    let points = Dataset::Power.generate(20_000, 2);
    for mu in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("mu", mu), &mu, |b, &mu| {
            b.iter(|| {
                build_weighted_coreset(
                    black_box(&points),
                    &Euclidean,
                    70,
                    &CoresetSpec::Multiplier { mu },
                    0,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gmm_select, bench_weighted_coreset);
criterion_main!(benches);
