//! Criterion microbenches for the radius search (round 2 of the outlier
//! algorithms) — the grid-vs-exact ablation in benchmark form.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kcenter_bench::Dataset;
use kcenter_core::coreset::{build_weighted_coreset, CoresetSpec};
use kcenter_core::radius_search::{find_min_feasible_radius, SearchMode};
use kcenter_data::inject_outliers;
use kcenter_metric::{DistanceMatrix, Euclidean};

fn bench_search_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("radius_search");
    group.sample_size(10);
    let (k, z) = (20usize, 50usize);
    let mut points = Dataset::Higgs.generate(20_000, 6);
    inject_outliers(&mut points, z, 7);
    for mu in [2usize, 8] {
        let build = build_weighted_coreset(
            &points,
            &Euclidean,
            k + z,
            &CoresetSpec::Multiplier { mu },
            0,
        );
        let cpoints = build.coreset.points_only();
        let weights = build.coreset.weights();
        let matrix = DistanceMatrix::build(&cpoints, &Euclidean);
        group.bench_with_input(
            BenchmarkId::new("geometric_grid", cpoints.len()),
            &(),
            |b, _| {
                b.iter(|| {
                    find_min_feasible_radius(
                        black_box(&matrix),
                        &weights,
                        k,
                        z as u64,
                        0.25,
                        SearchMode::GeometricGrid,
                    )
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("exact_candidates", cpoints.len()),
            &(),
            |b, _| {
                b.iter(|| {
                    find_min_feasible_radius(
                        black_box(&matrix),
                        &weights,
                        k,
                        z as u64,
                        0.25,
                        SearchMode::ExactCandidates,
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_search_modes);
criterion_main!(benches);
