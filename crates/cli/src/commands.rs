//! Command implementations for the `kcenter` binary.

use std::error::Error;
use std::time::Instant;

use kcenter_baselines::charikar_kcenter_outliers;
use kcenter_core::coreset::CoresetSpec;
use kcenter_core::gmm::gmm_select;
use kcenter_core::mapreduce_kcenter::{mr_kcenter, MrKCenterConfig};
use kcenter_core::mapreduce_outliers::{mr_kcenter_outliers, MrOutliersConfig};
use kcenter_core::sequential::{sequential_kcenter_outliers, SequentialOutliersConfig};
use kcenter_core::solution::{radius, radius_with_outliers};
use kcenter_core::streaming_outliers::CoresetOutliers;
use kcenter_core::tuning;
use kcenter_data::csv::{load_csv, save_csv};
use kcenter_data::normalize::Normalization;
use kcenter_data::{higgs_like, inject_outliers, power_like, wiki_like};
use kcenter_exec::{ExecConfig, MetricKind, TransportSpec, WorkerCommand};
use kcenter_metric::doubling::{estimate_doubling_dimension, DoublingConfig};
use kcenter_metric::pairwise::diameter_bounds;
use kcenter_metric::{Euclidean, Point};
use kcenter_store::{ArtifactKind, ArtifactStore, Fingerprint, StoredSolution};
use kcenter_stream::run_stream;

use crate::args::{
    Algo, CacheAction, CacheArgs, ClusterArgs, GenerateArgs, InfoArgs, Normalize, ReportFormat,
    ServeArgs,
};

/// Resolves `--trace`: an explicit path wins over (and errors louder
/// than) the lazy `KCENTER_TRACE` environment path.
fn activate_trace(flag: &Option<String>) -> Result<(), Box<dyn Error>> {
    if let Some(path) = flag {
        kcenter_obs::init_trace(path)?;
    }
    Ok(())
}

/// Resolves the cluster command's artifact store: the `--cache-dir` flag
/// wins, else `KCENTER_CACHE_DIR`, else caching is off. An explicit
/// empty `--cache-dir ""` forces caching off even when the environment
/// variable is set (also how the in-process tests stay deterministic
/// without mutating the process environment). When active, the store is
/// also installed as the process-wide matrix persistence so every
/// `CachedOracle` the algorithms resolve reads/writes it.
fn activate_store(flag: &Option<String>) -> Option<ArtifactStore> {
    let store = match flag.as_deref() {
        Some("") => None,
        Some(dir) => match kcenter_store::install_at(dir) {
            Ok(store) => Some(store),
            Err(err) => {
                eprintln!("warning: cannot open cache dir {dir}: {err} (cache off)");
                None
            }
        },
        None => kcenter_store::install_from_env(),
    };
    if let Some(store) = &store {
        eprintln!("persistent cache: {}", store.dir().display());
    }
    store
}

/// Stable tag for each algorithm, folded into solution fingerprints
/// (enum discriminants are not a stable serialization).
fn algo_tag(algo: Algo) -> &'static str {
    match algo {
        Algo::Gmm => "gmm",
        Algo::Mr => "mr",
        Algo::MrOutliers => "mr-outliers",
        Algo::MrRandomized => "mr-randomized",
        Algo::Sequential => "seq",
        Algo::Stream => "stream",
        Algo::Charikar => "charikar",
    }
}

/// Fingerprint of one `cluster` invocation: the exact input coordinate
/// bits plus every parameter that influences the solution. Two runs with
/// the same fingerprint produce bitwise-identical centers/objective, so a
/// warm cache can serve the whole solve. The crate version is folded in
/// so upgrading `kcenter` never serves solutions an older algorithm
/// produced; within one version, a semantic algorithm change must bump
/// the domain string (the pinned golden suites make such changes loud).
fn solution_fingerprint(args: &ClusterArgs, raw: &[Point], ell: usize) -> u128 {
    let mut fp = Fingerprint::with_domain("kcenter-cli/cluster-solution/v1");
    fp.write_str(env!("CARGO_PKG_VERSION"));
    fp.write_usize(raw.len());
    for p in raw {
        fp.write_f64s(p.coords());
    }
    fp.write_usize(args.k);
    fp.write_usize(args.z);
    fp.write_str(algo_tag(args.algo));
    fp.write_usize(ell);
    fp.write_usize(args.mu);
    fp.write_str(match args.normalize {
        Normalize::None => "none",
        Normalize::Zscore => "zscore",
        Normalize::MinMax => "minmax",
    });
    fp.write_u64(args.seed);
    fp.finish()
}

/// Fingerprint of the executor-facing configuration, announced in the
/// protocol `hello` so a worker pinned with `--pin-config` can reject a
/// coordinator running a different clustering setup (or binary version)
/// before any job is dispatched.
fn exec_config_fingerprint(args: &ClusterArgs, ell: usize) -> u128 {
    let mut fp = Fingerprint::with_domain("kcenter-cli/exec-config/v1");
    fp.write_str(env!("CARGO_PKG_VERSION"));
    fp.write_usize(args.k);
    fp.write_usize(args.z);
    fp.write_str(algo_tag(args.algo));
    fp.write_usize(ell);
    fp.write_usize(args.mu);
    fp.write_u64(args.seed);
    fp.finish()
}

/// Runs `kcenter cluster`, writing a human-readable report to stdout.
pub fn run_cluster(args: &ClusterArgs) -> Result<(), Box<dyn Error>> {
    activate_trace(&args.trace)?;
    let run_span = kcenter_obs::span!("cli.cluster", "algo" => algo_tag(args.algo));
    let store = activate_store(&args.cache_dir);
    let raw = load_csv(&args.input)?;
    if raw.is_empty() {
        return Err("input file contains no points".into());
    }
    println!(
        "loaded {} points of dimension {} from {}",
        raw.len(),
        raw[0].dim(),
        args.input
    );

    let norm = match args.normalize {
        Normalize::None => None,
        Normalize::Zscore => Some(Normalization::zscore(&raw)),
        Normalize::MinMax => Some(Normalization::min_max(&raw)),
    };
    let points = match &norm {
        Some(n) => n.apply_all(&raw),
        None => raw.clone(),
    };

    // --procs pins the parallelism: one worker process per partition.
    let ell = if args.procs > 0 {
        args.procs
    } else if args.ell > 0 {
        args.ell
    } else if args.z > 0 {
        tuning::ell_for_outliers(points.len(), args.k, args.z)
    } else {
        tuning::ell_for_kcenter(points.len(), args.k)
    };

    // Whole-solution caching: the fingerprint covers the input bits and
    // every solve parameter, so a hit is bitwise the same solution this
    // run would compute (centers in normalized space + objective).
    let fingerprint = store
        .as_ref()
        .map(|_| solution_fingerprint(args, &raw, ell));
    let start = Instant::now();
    let cached: Option<StoredSolution> = store
        .as_ref()
        .zip(fingerprint)
        .and_then(|(store, fp)| store.load_solution(fp));
    if cached.is_some() {
        eprintln!("solution cache: hit (solve skipped)");
    }
    // The multi-process executor already evaluates the objective over the
    // full dataset; reuse it rather than paying a second O(n·k) pass.
    let mut solved_objective = None;
    let centers: Vec<Point> = match &cached {
        Some(solution) => solution.centers.clone(),
        None if args.procs > 0 => {
            let (centers, objective) =
                run_cluster_multiprocess(args, &points, ell, store.as_ref())?;
            solved_objective = objective;
            centers
        }
        None => run_cluster_algorithm(args, &points, ell)?,
    };
    let elapsed = start.elapsed();

    let objective = match (&cached, solved_objective) {
        (Some(solution), _) => solution.radius,
        (None, Some(objective)) => objective,
        (None, None) if args.z > 0 => radius_with_outliers(&points, &centers, args.z, &Euclidean),
        (None, None) => radius(&points, &centers, &Euclidean),
    };
    if let (Some(store), Some(fp), None) = (&store, fingerprint, &cached) {
        let artifact = StoredSolution {
            centers: centers.clone(),
            radius: objective,
            // Not tracked uniformly across the algorithms; the CLI artifact
            // records the solution itself, not search diagnostics.
            uncovered_weight: 0,
            evaluations: 0,
        };
        if let Err(err) = store.store_solution(fp, &artifact) {
            eprintln!("warning: failed to persist solution: {err}");
        }
    }
    run_span.field("points", raw.len()).finish();
    report_cluster(args, ell, objective, elapsed, &norm, &centers)
}

/// Runs one `cluster` invocation on the multi-process executor: round 1
/// on `--procs` real worker OS processes (this binary re-invoked in its
/// hidden `worker` mode) over sharded on-disk inputs, round 2 in this
/// process. Results are bit-identical to the in-process engine at
/// parallelism `ell` (= `--procs`); per-worker accounting goes to stderr
/// so stdout stays a pure function of the input.
///
/// The second return value is the executor's objective over the full
/// dataset, returned only when its convention matches the CLI's (plain
/// radius for `mr` with `z = 0`, z-outlier objective for the outlier
/// algorithms with `z > 0`); `None` makes the caller evaluate it.
///
/// When the persistent cache is active, it doubles as the executor's
/// content-addressed shard store: a repeated run over the same input is
/// served its partition shards without a single shard write. Workers
/// deliberately do *not* inherit the cache (the coordinator strips
/// `KCENTER_CACHE_DIR` at spawn) — their accounting must match the
/// in-process engines bit for bit.
fn run_cluster_multiprocess(
    args: &ClusterArgs,
    points: &[Point],
    ell: usize,
    store: Option<&ArtifactStore>,
) -> Result<(Vec<Point>, Option<f64>), Box<dyn Error>> {
    let mut exec = ExecConfig::new(WorkerCommand::current_exe(&["worker"])?);
    exec.shard_store = store.cloned();
    exec.config_fingerprint = Some(exec_config_fingerprint(args, ell));
    if args.workers.is_empty() {
        eprintln!("executor: {ell} partitions on a bounded worker fleet");
    } else {
        exec.transport = TransportSpec::TcpConnect {
            addrs: args.workers.clone(),
        };
        exec.max_workers = Some(args.procs);
        eprintln!(
            "executor: {ell} partitions over tcp workers [{}]",
            args.workers.join(", ")
        );
    }
    let (centers, objective, report) = match args.algo {
        Algo::Mr => {
            let result = kcenter_exec::exec_mr_kcenter(
                points,
                MetricKind::Euclidean,
                &MrKCenterConfig {
                    k: args.k,
                    ell,
                    coreset: CoresetSpec::Multiplier { mu: args.mu },
                    seed: args.seed,
                },
                &exec,
            )?;
            let objective = (args.z == 0).then_some(result.clustering.radius);
            (result.clustering.centers, objective, result.report)
        }
        Algo::MrOutliers | Algo::MrRandomized => {
            let mut config = if args.algo == Algo::MrOutliers {
                MrOutliersConfig::deterministic(
                    args.k,
                    args.z,
                    ell,
                    CoresetSpec::Multiplier { mu: args.mu },
                )
            } else {
                MrOutliersConfig::randomized(
                    args.k,
                    args.z,
                    ell,
                    CoresetSpec::Multiplier { mu: args.mu },
                )
            };
            config.seed = args.seed;
            let result =
                kcenter_exec::exec_mr_outliers(points, MetricKind::Euclidean, &config, &exec)?;
            let objective = (args.z > 0).then_some(result.clustering.radius);
            (result.clustering.centers, objective, result.report)
        }
        // The argument parser only lets MapReduce algorithms through.
        other => return Err(format!("--procs does not support --algo {other:?}").into()),
    };
    for stat in &report.workers {
        eprintln!(
            "executor: worker {:>3}: {} points -> {} coreset points, build {:.1}ms, wall {:.1}ms",
            stat.partition,
            stat.shard_points,
            stat.coreset_size,
            stat.build.as_secs_f64() * 1e3,
            stat.wall.as_secs_f64() * 1e3,
        );
    }
    eprintln!(
        "executor: union = {} from {} partitions via {} merge jobs, round1 {:.1}ms, round2 {:.1}ms",
        report.union_size,
        report.workers.len(),
        report.merge_jobs,
        report.round1_time.as_secs_f64() * 1e3,
        report.round2_time.as_secs_f64() * 1e3,
    );
    eprintln!(
        "executor: {} workers spawned ({} respawned, {} reconnects), shards: {} written, {} served from cache",
        report.workers_spawned,
        report.worker_respawns,
        report.reconnects,
        report.shard_writes,
        report.shard_reuses,
    );
    Ok((centers, objective))
}

/// Dispatches one `cluster` invocation to the selected algorithm,
/// returning the centers (in the solve's — possibly normalized — space).
fn run_cluster_algorithm(
    args: &ClusterArgs,
    points: &[Point],
    ell: usize,
) -> Result<Vec<Point>, Box<dyn Error>> {
    Ok(match args.algo {
        Algo::Gmm => {
            let result = gmm_select(points, &Euclidean, args.k, 0);
            result
                .centers
                .into_iter()
                .map(|i| points[i].clone())
                .collect()
        }
        Algo::Mr => {
            let result = mr_kcenter(
                points,
                &Euclidean,
                &MrKCenterConfig {
                    k: args.k,
                    ell,
                    coreset: CoresetSpec::Multiplier { mu: args.mu },
                    seed: args.seed,
                },
            )?;
            result.clustering.centers
        }
        Algo::MrOutliers | Algo::MrRandomized => {
            let mut config = if args.algo == Algo::MrOutliers {
                MrOutliersConfig::deterministic(
                    args.k,
                    args.z,
                    ell,
                    CoresetSpec::Multiplier { mu: args.mu },
                )
            } else {
                MrOutliersConfig::randomized(
                    args.k,
                    args.z,
                    ell,
                    CoresetSpec::Multiplier { mu: args.mu },
                )
            };
            config.seed = args.seed;
            mr_kcenter_outliers(points, &Euclidean, &config)?
                .clustering
                .centers
        }
        Algo::Sequential => {
            let mut config = SequentialOutliersConfig::new(args.k, args.z, args.mu);
            config.seed = args.seed;
            sequential_kcenter_outliers(points, &Euclidean, &config)?
                .clustering
                .centers
        }
        Algo::Stream => {
            let tau = args.mu * (args.k + args.z);
            let alg = CoresetOutliers::new(Euclidean, args.k, args.z, tau, 0.25);
            let (out, report) = run_stream(alg, points.iter().cloned());
            println!(
                "streaming pass: {} points/s, peak memory {} points",
                report.throughput().map(|t| t as u64).unwrap_or(0),
                report.peak_memory_items
            );
            out.centers
        }
        Algo::Charikar => {
            charikar_kcenter_outliers(points, &Euclidean, args.k, args.z)?
                .clustering
                .centers
        }
    })
}

/// Prints the cluster report and writes the centers file, shared by the
/// solved and cache-served paths.
fn report_cluster(
    args: &ClusterArgs,
    ell: usize,
    objective: f64,
    elapsed: std::time::Duration,
    norm: &Option<Normalization>,
    centers: &[Point],
) -> Result<(), Box<dyn Error>> {
    match args.report {
        ReportFormat::Text => {
            println!(
                "algo = {:?}, k = {}, z = {}, ell = {ell}, mu = {}",
                args.algo, args.k, args.z, args.mu
            );
            println!(
                "radius = {objective:.6} ({} space), time = {:.2?}",
                if norm.is_some() { "normalized" } else { "data" },
                elapsed
            );
        }
        ReportFormat::Json => {
            // One JSON object on its own line: the run parameters and
            // result, plus the full metrics-registry snapshot.
            println!(
                "{{\"schema\":\"kcenter-report/v1\",\"algo\":\"{}\",\"k\":{},\"z\":{},\"ell\":{ell},\"mu\":{},\"radius\":{objective},\"space\":\"{}\",\"elapsed_us\":{},\"metrics\":{}}}",
                algo_tag(args.algo),
                args.k,
                args.z,
                args.mu,
                if norm.is_some() { "normalized" } else { "data" },
                elapsed.as_micros(),
                kcenter_obs::render_json(),
            );
        }
    }

    if let Some(path) = &args.output {
        // Map centers back to data space before writing.
        let out_centers: Vec<Point> = match norm {
            Some(n) => centers.iter().map(|c| n.invert(c)).collect(),
            None => centers.to_vec(),
        };
        save_csv(path, &out_centers)?;
        println!("wrote {} centers to {path}", out_centers.len());
    }
    Ok(())
}

/// Runs `kcenter cache` (`stat` | `clear`). The directory comes from
/// `--cache-dir`, falling back to `KCENTER_CACHE_DIR`.
pub fn run_cache(args: &CacheArgs) -> Result<(), Box<dyn Error>> {
    let dir = match &args.dir {
        Some(dir) => dir.clone(),
        None => match std::env::var(kcenter_store::CACHE_DIR_ENV) {
            Ok(dir) if !dir.trim().is_empty() => dir,
            _ => {
                return Err(format!(
                    "no cache directory: pass --cache-dir or set {}",
                    kcenter_store::CACHE_DIR_ENV
                )
                .into())
            }
        },
    };
    let store = ArtifactStore::open(&dir)?;
    match args.action {
        CacheAction::Stat => {
            let stat = store.stat()?;
            println!("cache directory : {}", store.dir().display());
            for kind in ArtifactKind::ALL {
                let bucket = stat.kind(kind);
                println!(
                    "{:<16}: {} entries, {} bytes",
                    kind.name(),
                    bucket.entries,
                    bucket.bytes
                );
            }
            println!(
                "{:<16}: {} entries, {} bytes",
                "total",
                stat.total_entries(),
                stat.total_bytes()
            );
        }
        CacheAction::Clear => {
            let removed = store.clear()?;
            println!("removed {removed} entries from {}", store.dir().display());
        }
        CacheAction::Prune { max_bytes } => {
            let report = store.prune(max_bytes)?;
            println!(
                "pruned {} files ({} bytes) from {}; {} entries ({} bytes) remain",
                report.removed,
                report.removed_bytes,
                store.dir().display(),
                report.remaining_entries,
                report.remaining_bytes,
            );
        }
    }
    Ok(())
}

/// Runs `kcenter generate`.
/// Runs `kcenter serve`: binds the unix socket and serves the session
/// registry until a client sends `shutdown`.
///
/// The session store follows the cache-dir convention of `cluster`:
/// `--cache-dir` wins, else `KCENTER_CACHE_DIR`, else no persistence —
/// and without persistence `--memory-budget` is rejected (eviction would
/// discard session state).
pub fn run_serve(args: &ServeArgs) -> Result<(), Box<dyn Error>> {
    activate_trace(&args.trace)?;
    let store = activate_store(&args.cache_dir);
    let config = kcenter_serve::RegistryConfig {
        tau: args.tau,
        memory_budget_points: args.memory_budget,
        snapshot_every: args.snapshot_every,
        ..kcenter_serve::RegistryConfig::default()
    };
    let registry = kcenter_serve::SessionRegistry::new(Euclidean, config, store)?;
    let mut endpoints = Vec::new();
    if let Some(socket) = &args.socket {
        endpoints.push(kcenter_serve::ServeEndpoint::Unix(socket.into()));
    }
    if let Some(listen) = &args.listen {
        endpoints.push(kcenter_serve::ServeEndpoint::Tcp(listen.clone()));
    }
    let described: Vec<String> = args
        .socket
        .iter()
        .map(|s| format!("unix:{s}"))
        .chain(args.listen.iter().cloned())
        .collect();
    eprintln!(
        "kcenter serve: listening on {} (tau = {}, budget = {}, snapshot every = {})",
        described.join(" + "),
        args.tau,
        args.memory_budget
            .map_or("unbounded".to_string(), |b| format!("{b} points")),
        if args.snapshot_every == 0 {
            "evict/shutdown only".to_string()
        } else {
            format!("{} items", args.snapshot_every)
        },
    );
    kcenter_serve::run_server_on(&endpoints, registry)?;
    eprintln!("kcenter serve: shut down cleanly");
    Ok(())
}

pub fn run_generate(args: &GenerateArgs) -> Result<(), Box<dyn Error>> {
    let mut points = match args.dataset.as_str() {
        "higgs" => higgs_like(args.n, args.seed),
        "power" => power_like(args.n, args.seed),
        "wiki" => wiki_like(args.n, args.seed),
        other => return Err(format!("unknown dataset {other:?}").into()),
    };
    if args.outliers > 0 {
        let report = inject_outliers(&mut points, args.outliers, args.seed ^ 0xBAD);
        println!(
            "injected {} outliers at 100 x r_MEB = {:.3}",
            args.outliers,
            100.0 * report.meb_radius
        );
    }
    save_csv(&args.output, &points)?;
    println!(
        "wrote {} points ({}-dimensional) to {}",
        points.len(),
        points[0].dim(),
        args.output
    );
    Ok(())
}

/// Runs `kcenter info`.
pub fn run_info(args: &InfoArgs) -> Result<(), Box<dyn Error>> {
    let points = load_csv(&args.input)?;
    if points.is_empty() {
        return Err("input file contains no points".into());
    }
    let (lo, hi) = diameter_bounds(&points, &Euclidean);
    let doubling = estimate_doubling_dimension(&points, &Euclidean, DoublingConfig::default());
    println!("file          : {}", args.input);
    println!("points        : {}", points.len());
    println!("dimension     : {}", points[0].dim());
    println!("diameter      : in [{lo:.6}, {hi:.6}]");
    println!("doubling dim  : ~{doubling:.2} (estimated)");
    println!(
        "suggested ell : {} (k-center, k = 10, Corollary 1)",
        tuning::ell_for_kcenter(points.len(), 10)
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Normalize;

    /// The command tests must run with caching off regardless of an
    /// ambient `KCENTER_CACHE_DIR` (a developer's cache must neither
    /// serve these fixtures stale solutions nor collect their
    /// artifacts). `--cache-dir ""` is the race-free off switch: unlike
    /// `env::remove_var`, it does not mutate the process environment
    /// under libtest's parallel threads.
    fn cache_off() -> Option<String> {
        Some(String::new())
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("kcenter-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_fixture(name: &str) -> std::path::PathBuf {
        let path = temp_path(name);
        // Two clusters plus an outlier.
        let mut rows = String::new();
        for i in 0..20 {
            rows.push_str(&format!("{},0.0\n", i as f64 * 0.1));
        }
        for i in 0..20 {
            rows.push_str(&format!("{},100.0\n", i as f64 * 0.1));
        }
        rows.push_str("5000,5000\n");
        std::fs::write(&path, rows).unwrap();
        path
    }

    #[test]
    fn cluster_command_end_to_end() {
        let input = write_fixture("cluster_in.csv");
        let output = temp_path("centers_out.csv");
        let args = ClusterArgs {
            input: input.to_string_lossy().into_owned(),
            k: 2,
            z: 1,
            algo: Algo::Sequential,
            ell: 0,
            procs: 0,
            workers: vec![],
            mu: 4,
            normalize: Normalize::Zscore,
            output: Some(output.to_string_lossy().into_owned()),
            seed: 1,
            cache_dir: cache_off(),
            trace: None,
            report: ReportFormat::Text,
        };
        run_cluster(&args).unwrap();
        let centers = load_csv(&output).unwrap();
        assert_eq!(centers.len(), 2);
        // Centers written back in data space: one near y=0, one near y=100.
        let mut ys: Vec<f64> = centers.iter().map(|c| c[1]).collect();
        ys.sort_by(f64::total_cmp);
        assert!(ys[0].abs() < 10.0, "center y {} not near 0", ys[0]);
        assert!(
            (ys[1] - 100.0).abs() < 10.0,
            "center y {} not near 100",
            ys[1]
        );
    }

    #[test]
    fn cluster_all_algorithms_run() {
        let input = write_fixture("cluster_algos.csv");
        for algo in [
            Algo::Gmm,
            Algo::Mr,
            Algo::MrOutliers,
            Algo::MrRandomized,
            Algo::Sequential,
            Algo::Stream,
            Algo::Charikar,
        ] {
            let args = ClusterArgs {
                input: input.to_string_lossy().into_owned(),
                k: 2,
                z: if algo == Algo::Gmm || algo == Algo::Mr {
                    0
                } else {
                    1
                },
                algo,
                ell: 2,
                procs: 0,
                workers: vec![],
                mu: 2,
                normalize: Normalize::None,
                output: None,
                seed: 0,
                cache_dir: cache_off(),
                trace: None,
                report: ReportFormat::Text,
            };
            run_cluster(&args).unwrap_or_else(|e| panic!("{algo:?} failed: {e}"));
        }
    }

    #[test]
    fn generate_then_info_round_trip() {
        let out = temp_path("generated.csv");
        run_generate(&GenerateArgs {
            dataset: "higgs".into(),
            n: 200,
            outliers: 3,
            seed: 4,
            output: out.to_string_lossy().into_owned(),
        })
        .unwrap();
        let pts = load_csv(&out).unwrap();
        assert_eq!(pts.len(), 203);
        run_info(&InfoArgs {
            input: out.to_string_lossy().into_owned(),
        })
        .unwrap();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let args = InfoArgs {
            input: "/nonexistent/nowhere.csv".into(),
        };
        assert!(run_info(&args).is_err());
    }

    #[test]
    fn cache_prune_command_enforces_the_budget() {
        use crate::args::{CacheAction, CacheArgs};
        let dir = std::env::temp_dir()
            .join("kcenter-cli-tests")
            .join(format!("prune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = kcenter_store::ArtifactStore::open(&dir).unwrap();
        let matrix = kcenter_metric::DistanceMatrix::from_condensed(3, vec![1.0, 2.0, 3.0]);
        for fp in [1u128, 2, 3] {
            store.store_matrix(fp, &matrix).unwrap();
        }
        run_cache(&CacheArgs {
            action: CacheAction::Prune { max_bytes: 0 },
            dir: Some(dir.to_string_lossy().into_owned()),
        })
        .unwrap();
        assert_eq!(store.stat().unwrap().total_entries(), 0);
        // Without a directory (flag or env), prune is a clean error.
        if std::env::var(kcenter_store::CACHE_DIR_ENV).is_err() {
            assert!(run_cache(&CacheArgs {
                action: CacheAction::Prune { max_bytes: 0 },
                dir: None,
            })
            .is_err());
        }
    }
}
