//! Hand-rolled, testable argument parsing for the `kcenter` binary.
//!
//! No CLI dependency: the grammar is small and fixed, and parsing from an
//! explicit iterator keeps it unit-testable.

use std::fmt;

/// Which clustering algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// Sequential GMM (2-approx, no outliers).
    Gmm,
    /// 2-round MapReduce k-center (2+ε).
    Mr,
    /// 2-round MapReduce with outliers, deterministic (3+ε).
    MrOutliers,
    /// 2-round MapReduce with outliers, randomized (3+ε whp).
    MrRandomized,
    /// Sequential coreset algorithm with outliers (3+ε).
    Sequential,
    /// 1-pass streaming with outliers (3+ε).
    Stream,
    /// Charikar et al. 2001 baseline (3-approx, quadratic).
    Charikar,
}

impl Algo {
    fn parse(s: &str) -> Result<Algo, ArgError> {
        Ok(match s {
            "gmm" => Algo::Gmm,
            "mr" => Algo::Mr,
            "mr-outliers" => Algo::MrOutliers,
            "mr-randomized" => Algo::MrRandomized,
            "seq" => Algo::Sequential,
            "stream" => Algo::Stream,
            "charikar" => Algo::Charikar,
            other => return Err(ArgError::new(format!("unknown --algo {other:?}"))),
        })
    }
}

/// Normalization choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Normalize {
    /// No normalization.
    None,
    /// Z-score per coordinate.
    Zscore,
    /// Min–max per coordinate.
    MinMax,
}

impl Normalize {
    fn parse(s: &str) -> Result<Normalize, ArgError> {
        Ok(match s {
            "none" => Normalize::None,
            "zscore" => Normalize::Zscore,
            "minmax" => Normalize::MinMax,
            other => return Err(ArgError::new(format!("unknown --normalize {other:?}"))),
        })
    }
}

/// How `kcenter cluster` renders its run report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReportFormat {
    /// The human-readable text report (the default; byte-stable for the
    /// golden determinism suites).
    Text,
    /// A JSON report including the metrics-registry snapshot.
    Json,
}

impl ReportFormat {
    fn parse(s: &str) -> Result<ReportFormat, ArgError> {
        Ok(match s {
            "text" => ReportFormat::Text,
            "json" => ReportFormat::Json,
            other => return Err(ArgError::new(format!("unknown --report {other:?}"))),
        })
    }
}

/// A parsed command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Cluster a CSV file.
    Cluster(ClusterArgs),
    /// Generate a synthetic dataset.
    Generate(GenerateArgs),
    /// Print dataset statistics.
    Info(InfoArgs),
    /// Inspect, empty, or prune the persistent artifact cache.
    Cache(CacheArgs),
    /// Run the clustering-as-a-service session server on a unix socket.
    Serve(ServeArgs),
    /// Hidden worker mode: the raw flags are handed to
    /// `kcenter_exec::worker_main` verbatim. This is how `cluster
    /// --procs N` re-invokes the current binary as its round-1 workers.
    ExecWorker(Vec<String>),
}

/// Arguments of `kcenter cluster`.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterArgs {
    /// Input CSV path.
    pub input: String,
    /// Number of centers.
    pub k: usize,
    /// Outlier budget (0 = plain k-center).
    pub z: usize,
    /// Algorithm.
    pub algo: Algo,
    /// MapReduce parallelism (0 = auto via the paper's corollaries).
    pub ell: usize,
    /// Real worker OS processes (0 = in-process execution). When positive
    /// the parallelism `ℓ` equals this count and round 1 runs on spawned
    /// worker processes over sharded on-disk inputs — bit-identical
    /// results, real process isolation. MR algorithms only.
    pub procs: usize,
    /// TCP addresses of externally started workers (`kcenter worker
    /// --listen ADDR`), comma-separated on the command line. Empty =
    /// the default child-process pipe transport. Requires `--procs`.
    pub workers: Vec<String>,
    /// Coreset multiplier.
    pub mu: usize,
    /// Normalization.
    pub normalize: Normalize,
    /// Optional path to write the centers (CSV, data space).
    pub output: Option<String>,
    /// RNG seed.
    pub seed: u64,
    /// Persistent artifact cache directory (overrides `KCENTER_CACHE_DIR`;
    /// `None` defers to the environment, and caching stays off when
    /// neither is set). An explicit empty value (`--cache-dir ""`) forces
    /// caching off even when the environment variable is set.
    pub cache_dir: Option<String>,
    /// Structured trace output path (`--trace PATH`; overrides the
    /// `KCENTER_TRACE` environment variable). `None` defers to the
    /// environment, and tracing stays off when neither is set.
    pub trace: Option<String>,
    /// Run-report rendering (`--report text|json`).
    pub report: ReportFormat,
}

/// Arguments of `kcenter generate`.
#[derive(Clone, Debug, PartialEq)]
pub struct GenerateArgs {
    /// Dataset family: higgs | power | wiki.
    pub dataset: String,
    /// Number of points.
    pub n: usize,
    /// Outliers to inject.
    pub outliers: usize,
    /// RNG seed.
    pub seed: u64,
    /// Output CSV path.
    pub output: String,
}

/// Arguments of `kcenter info`.
#[derive(Clone, Debug, PartialEq)]
pub struct InfoArgs {
    /// Input CSV path.
    pub input: String,
}

/// What `kcenter cache` should do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheAction {
    /// Report per-kind entry counts and sizes.
    Stat,
    /// Remove every artifact entry (and stale temp file).
    Clear,
    /// Evict least-recently-written entries until the cache fits the
    /// byte budget.
    Prune {
        /// Byte budget the cache must fit within after the sweep.
        max_bytes: u64,
    },
}

/// Arguments of `kcenter cache`.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheArgs {
    /// `stat` or `clear`.
    pub action: CacheAction,
    /// Cache directory (`--cache-dir`); falls back to `KCENTER_CACHE_DIR`.
    pub dir: Option<String>,
}

/// Arguments of `kcenter serve`.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeArgs {
    /// Unix socket path to listen on (`None` = TCP only).
    pub socket: Option<String>,
    /// TCP address to listen on (`--listen tcp://HOST:PORT`; `None` =
    /// unix only). At least one of the two endpoints is required.
    pub listen: Option<String>,
    /// Coreset budget `τ` per session.
    pub tau: usize,
    /// Resident-point budget across sessions (`None` = no eviction).
    pub memory_budget: Option<usize>,
    /// Persist each session every N processed items (`0` = only on
    /// evict/flush/shutdown).
    pub snapshot_every: u64,
    /// Session store directory (`--cache-dir`); falls back to
    /// `KCENTER_CACHE_DIR`. Required for eviction/persistence.
    pub cache_dir: Option<String>,
    /// Structured trace output path (`--trace PATH`; overrides the
    /// `KCENTER_TRACE` environment variable).
    pub trace: Option<String>,
}

/// A parse failure with its message.
#[derive(Clone, Debug, PartialEq)]
pub struct ArgError {
    msg: String,
}

impl ArgError {
    fn new(msg: impl Into<String>) -> ArgError {
        ArgError { msg: msg.into() }
    }
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for ArgError {}

/// Usage text shown on `--help` or errors.
pub const USAGE: &str = "\
kcenter — coreset-based k-center clustering (with outliers)

USAGE:
  kcenter cluster  --input FILE --k K [--z Z] [--algo gmm|mr|mr-outliers|mr-randomized|seq|stream|charikar]
                   [--ell L] [--procs N] [--workers ADDR,ADDR…] [--mu M]
                   [--normalize none|zscore|minmax] [--output FILE]
                   [--seed S] [--cache-dir DIR] [--trace FILE]
                   [--report text|json]
  kcenter generate --dataset higgs|power|wiki --n N [--outliers Z] [--seed S] --output FILE
  kcenter info     --input FILE
  kcenter cache    stat|clear [--cache-dir DIR]
  kcenter cache    prune --max-bytes BYTES [--cache-dir DIR]
  kcenter serve    [--socket PATH] [--listen tcp://HOST:PORT] [--tau T]
                   [--memory-budget POINTS] [--snapshot-every N] [--cache-dir DIR]
                   [--trace FILE]
  kcenter worker   --listen HOST:PORT | --connect HOST:PORT
                   [--store DIR] [--pin-config HEX]

--procs N runs the MapReduce algorithms (mr | mr-outliers | mr-randomized)
on N real worker OS processes over sharded on-disk inputs, with results
bit-identical to the in-process engine at parallelism N. By default the
workers are spawned children wired over pipes; --workers hands round 1 to
externally started `kcenter worker --listen` processes over TCP instead
(shards travel as `@store/…` references, so the workers need the same
--cache-dir store). Results are bit-identical across both transports.

`worker` runs one executor worker: `--listen` waits for a coordinator to
dial in (and prints the bound address, so `--listen HOST:0` works);
`--connect` dials a coordinator that is accepting workers. `--store DIR`
is where `@store/…` shard references resolve; `--pin-config HEX` makes
the worker reject coordinators whose config fingerprint differs (see
docs/PROTOCOL.md for the handshake).

`serve` runs a long-lived multi-tenant session server over the streaming
coreset: clients ingest/query/evict per-(tenant, stream) sessions through
a length-delimited framed protocol on the unix socket, a TCP listener, or
both at once (each `--listen`/`--socket` endpoint is announced on stdout;
tcp://HOST:0 picks an ephemeral port). With a cache dir, sessions
snapshot to the artifact store and idle sessions are evicted under
--memory-budget, restoring transparently (bit-identically) on the next
touch.

The persistent artifact cache (distance matrices, coresets, solutions) is
off unless --cache-dir or the KCENTER_CACHE_DIR environment variable
names a directory (--cache-dir \"\" forces it off); `cache stat`/`cache
clear` inspect and empty it, `cache prune --max-bytes` evicts the least
recently written entries down to a byte budget.

Structured tracing is off unless --trace or the KCENTER_TRACE
environment variable names an output file; when on, span and event
records stream there as JSONL (schema kcenter-trace/v1, see
docs/PROTOCOL.md §8). All trace bytes go to that file and nowhere
else, so stdout/stderr stay byte-identical either way. `cluster
--report json` prints the run report plus a metrics-registry snapshot
as JSON; `serve` exposes the same registry through its `metrics` verb
in Prometheus text or JSON.
";

fn take_value<'a, I: Iterator<Item = &'a str>>(
    flag: &str,
    iter: &mut I,
) -> Result<&'a str, ArgError> {
    iter.next()
        .ok_or_else(|| ArgError::new(format!("{flag} requires a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, ArgError> {
    value
        .parse()
        .map_err(|_| ArgError::new(format!("{flag} got invalid value {value:?}")))
}

/// Parses a full command line (without the program name).
pub fn parse<'a, I: IntoIterator<Item = &'a str>>(args: I) -> Result<Command, ArgError> {
    let mut iter = args.into_iter();
    let sub = iter
        .next()
        .ok_or_else(|| ArgError::new("missing subcommand (cluster | generate | info)"))?;
    match sub {
        "cluster" => parse_cluster(iter),
        "generate" => parse_generate(iter),
        "info" => parse_info(iter),
        "cache" => parse_cache(iter),
        "serve" => parse_serve(iter),
        // Hidden: the multi-process executor re-invokes this binary as its
        // workers. Flags are validated by the worker itself.
        "worker" => Ok(Command::ExecWorker(iter.map(String::from).collect())),
        "--help" | "-h" | "help" => Err(ArgError::new(USAGE)),
        other => Err(ArgError::new(format!("unknown subcommand {other:?}"))),
    }
}

fn parse_cluster<'a, I: Iterator<Item = &'a str>>(mut iter: I) -> Result<Command, ArgError> {
    let mut input = None;
    let mut k = None;
    let mut z = 0usize;
    let mut algo = Algo::Sequential;
    let mut ell = 0usize;
    let mut procs = 0usize;
    let mut workers = Vec::new();
    let mut mu = 4usize;
    let mut normalize = Normalize::Zscore;
    let mut output = None;
    let mut seed = 0u64;
    let mut cache_dir = None;
    let mut trace = None;
    let mut report = ReportFormat::Text;
    while let Some(arg) = iter.next() {
        match arg {
            "--input" => input = Some(take_value(arg, &mut iter)?.to_string()),
            "--k" => k = Some(parse_num(arg, take_value(arg, &mut iter)?)?),
            "--z" => z = parse_num(arg, take_value(arg, &mut iter)?)?,
            "--algo" => algo = Algo::parse(take_value(arg, &mut iter)?)?,
            "--ell" => ell = parse_num(arg, take_value(arg, &mut iter)?)?,
            "--procs" => procs = parse_num(arg, take_value(arg, &mut iter)?)?,
            "--workers" => {
                workers = take_value(arg, &mut iter)?
                    .split(',')
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .map(String::from)
                    .collect()
            }
            "--mu" => mu = parse_num(arg, take_value(arg, &mut iter)?)?,
            "--normalize" => normalize = Normalize::parse(take_value(arg, &mut iter)?)?,
            "--output" => output = Some(take_value(arg, &mut iter)?.to_string()),
            "--seed" => seed = parse_num(arg, take_value(arg, &mut iter)?)?,
            "--cache-dir" => cache_dir = Some(take_value(arg, &mut iter)?.to_string()),
            "--trace" => trace = Some(take_value(arg, &mut iter)?.to_string()),
            "--report" => report = ReportFormat::parse(take_value(arg, &mut iter)?)?,
            other => return Err(ArgError::new(format!("unknown flag {other:?}"))),
        }
    }
    let input = input.ok_or_else(|| ArgError::new("cluster requires --input"))?;
    let k = k.ok_or_else(|| ArgError::new("cluster requires --k"))?;
    if mu == 0 {
        return Err(ArgError::new("--mu must be at least 1"));
    }
    if procs > 0 {
        if !matches!(algo, Algo::Mr | Algo::MrOutliers | Algo::MrRandomized) {
            return Err(ArgError::new(
                "--procs requires a MapReduce algorithm (--algo mr | mr-outliers | mr-randomized)",
            ));
        }
        if ell > 0 && ell != procs {
            return Err(ArgError::new(
                "--procs sets the parallelism: drop --ell or make them equal",
            ));
        }
    }
    if !workers.is_empty() {
        if procs == 0 {
            return Err(ArgError::new(
                "--workers requires --procs (the number of worker connections to use)",
            ));
        }
        if procs > workers.len() {
            return Err(ArgError::new(format!(
                "--procs {} exceeds the {} address(es) given to --workers",
                procs,
                workers.len()
            )));
        }
    }
    Ok(Command::Cluster(ClusterArgs {
        input,
        k,
        z,
        algo,
        ell,
        procs,
        workers,
        mu,
        normalize,
        output,
        seed,
        cache_dir,
        trace,
        report,
    }))
}

fn parse_cache<'a, I: Iterator<Item = &'a str>>(mut iter: I) -> Result<Command, ArgError> {
    let action = match iter
        .next()
        .ok_or_else(|| ArgError::new("cache requires an action (stat | clear | prune)"))?
    {
        "stat" => CacheAction::Stat,
        "clear" => CacheAction::Clear,
        "prune" => CacheAction::Prune { max_bytes: 0 },
        other => {
            return Err(ArgError::new(format!(
                "cache action must be stat | clear | prune, got {other:?}"
            )))
        }
    };
    let mut dir = None;
    let mut max_bytes = None;
    while let Some(arg) = iter.next() {
        match arg {
            "--cache-dir" => dir = Some(take_value(arg, &mut iter)?.to_string()),
            "--max-bytes" if matches!(action, CacheAction::Prune { .. }) => {
                max_bytes = Some(parse_num(arg, take_value(arg, &mut iter)?)?)
            }
            other => return Err(ArgError::new(format!("unknown flag {other:?}"))),
        }
    }
    let action = match action {
        CacheAction::Prune { .. } => CacheAction::Prune {
            max_bytes: max_bytes
                .ok_or_else(|| ArgError::new("cache prune requires --max-bytes"))?,
        },
        other => other,
    };
    Ok(Command::Cache(CacheArgs { action, dir }))
}

fn parse_serve<'a, I: Iterator<Item = &'a str>>(mut iter: I) -> Result<Command, ArgError> {
    let mut socket = None;
    let mut listen = None;
    let mut tau = 128usize;
    let mut memory_budget = None;
    let mut snapshot_every = 0u64;
    let mut cache_dir = None;
    let mut trace = None;
    while let Some(arg) = iter.next() {
        match arg {
            "--socket" => socket = Some(take_value(arg, &mut iter)?.to_string()),
            "--listen" => listen = Some(take_value(arg, &mut iter)?.to_string()),
            "--tau" => tau = parse_num(arg, take_value(arg, &mut iter)?)?,
            "--memory-budget" => memory_budget = Some(parse_num(arg, take_value(arg, &mut iter)?)?),
            "--snapshot-every" => snapshot_every = parse_num(arg, take_value(arg, &mut iter)?)?,
            "--cache-dir" => cache_dir = Some(take_value(arg, &mut iter)?.to_string()),
            "--trace" => trace = Some(take_value(arg, &mut iter)?.to_string()),
            other => return Err(ArgError::new(format!("unknown flag {other:?}"))),
        }
    }
    if socket.is_none() && listen.is_none() {
        return Err(ArgError::new(
            "serve requires an endpoint: --socket PATH and/or --listen tcp://HOST:PORT",
        ));
    }
    if tau == 0 {
        return Err(ArgError::new("--tau must be at least 1"));
    }
    Ok(Command::Serve(ServeArgs {
        socket,
        listen,
        tau,
        memory_budget,
        snapshot_every,
        cache_dir,
        trace,
    }))
}

fn parse_generate<'a, I: Iterator<Item = &'a str>>(mut iter: I) -> Result<Command, ArgError> {
    let mut dataset = None;
    let mut n = None;
    let mut outliers = 0usize;
    let mut seed = 0u64;
    let mut output = None;
    while let Some(arg) = iter.next() {
        match arg {
            "--dataset" => dataset = Some(take_value(arg, &mut iter)?.to_string()),
            "--n" => n = Some(parse_num(arg, take_value(arg, &mut iter)?)?),
            "--outliers" => outliers = parse_num(arg, take_value(arg, &mut iter)?)?,
            "--seed" => seed = parse_num(arg, take_value(arg, &mut iter)?)?,
            "--output" => output = Some(take_value(arg, &mut iter)?.to_string()),
            other => return Err(ArgError::new(format!("unknown flag {other:?}"))),
        }
    }
    let dataset = dataset.ok_or_else(|| ArgError::new("generate requires --dataset"))?;
    if !matches!(dataset.as_str(), "higgs" | "power" | "wiki") {
        return Err(ArgError::new(format!(
            "--dataset must be higgs | power | wiki, got {dataset:?}"
        )));
    }
    let n = n.ok_or_else(|| ArgError::new("generate requires --n"))?;
    let output = output.ok_or_else(|| ArgError::new("generate requires --output"))?;
    Ok(Command::Generate(GenerateArgs {
        dataset,
        n,
        outliers,
        seed,
        output,
    }))
}

fn parse_info<'a, I: Iterator<Item = &'a str>>(mut iter: I) -> Result<Command, ArgError> {
    let mut input = None;
    while let Some(arg) = iter.next() {
        match arg {
            "--input" => input = Some(take_value(arg, &mut iter)?.to_string()),
            other => return Err(ArgError::new(format!("unknown flag {other:?}"))),
        }
    }
    let input = input.ok_or_else(|| ArgError::new("info requires --input"))?;
    Ok(Command::Info(InfoArgs { input }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_cluster() {
        let cmd = parse(["cluster", "--input", "pts.csv", "--k", "5"]).unwrap();
        match cmd {
            Command::Cluster(args) => {
                assert_eq!(args.input, "pts.csv");
                assert_eq!(args.k, 5);
                assert_eq!(args.z, 0);
                assert_eq!(args.algo, Algo::Sequential);
                assert_eq!(args.normalize, Normalize::Zscore);
                assert_eq!(args.ell, 0);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_full_cluster() {
        let cmd = parse([
            "cluster",
            "--input",
            "a.csv",
            "--k",
            "10",
            "--z",
            "20",
            "--algo",
            "mr-randomized",
            "--ell",
            "8",
            "--mu",
            "2",
            "--normalize",
            "minmax",
            "--output",
            "c.csv",
            "--seed",
            "7",
            "--cache-dir",
            "/tmp/kc-cache",
            "--trace",
            "/tmp/run.jsonl",
            "--report",
            "json",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Cluster(ClusterArgs {
                input: "a.csv".into(),
                k: 10,
                z: 20,
                algo: Algo::MrRandomized,
                ell: 8,
                procs: 0,
                workers: vec![],
                mu: 2,
                normalize: Normalize::MinMax,
                output: Some("c.csv".into()),
                seed: 7,
                cache_dir: Some("/tmp/kc-cache".into()),
                trace: Some("/tmp/run.jsonl".into()),
                report: ReportFormat::Json,
            })
        );
        // --report defaults to text and rejects unknown renderings.
        assert!(parse(["cluster", "--input", "a.csv", "--k", "2", "--report", "xml"]).is_err());
    }

    #[test]
    fn parses_procs_for_mapreduce_algorithms() {
        let cmd = parse([
            "cluster", "--input", "a.csv", "--k", "4", "--algo", "mr", "--procs", "4",
        ])
        .unwrap();
        match cmd {
            Command::Cluster(args) => {
                assert_eq!(args.procs, 4);
                assert_eq!(args.ell, 0);
            }
            other => panic!("wrong command {other:?}"),
        }
        // --ell may be given redundantly, but only if it agrees.
        assert!(parse([
            "cluster", "--input", "a.csv", "--k", "4", "--algo", "mr", "--procs", "4", "--ell",
            "4",
        ])
        .is_ok());
        assert!(parse([
            "cluster", "--input", "a.csv", "--k", "4", "--algo", "mr", "--procs", "4", "--ell",
            "2",
        ])
        .is_err());
        // Non-MapReduce algorithms cannot run multi-process.
        for algo in ["gmm", "seq", "stream", "charikar"] {
            assert!(
                parse(["cluster", "--input", "a.csv", "--k", "4", "--algo", algo, "--procs", "2",])
                    .is_err(),
                "--procs accepted for {algo}"
            );
        }
    }

    #[test]
    fn parses_workers_for_the_tcp_transport() {
        let cmd = parse([
            "cluster",
            "--input",
            "a.csv",
            "--k",
            "4",
            "--algo",
            "mr",
            "--procs",
            "2",
            "--workers",
            "127.0.0.1:4700, 127.0.0.1:4701",
        ])
        .unwrap();
        match cmd {
            Command::Cluster(args) => {
                assert_eq!(args.procs, 2);
                assert_eq!(args.workers, vec!["127.0.0.1:4700", "127.0.0.1:4701"]);
            }
            other => panic!("wrong command {other:?}"),
        }
        // --workers without --procs is an error…
        assert!(parse([
            "cluster",
            "--input",
            "a.csv",
            "--k",
            "4",
            "--algo",
            "mr",
            "--workers",
            "127.0.0.1:4700",
        ])
        .is_err());
        // …as is asking for more connections than addresses.
        assert!(parse([
            "cluster",
            "--input",
            "a.csv",
            "--k",
            "4",
            "--algo",
            "mr",
            "--procs",
            "3",
            "--workers",
            "127.0.0.1:4700,127.0.0.1:4701",
        ])
        .is_err());
    }

    #[test]
    fn parses_hidden_worker_subcommand() {
        let cmd = parse(["worker", "--shard", "s.kca", "--out", "o.kca"]).unwrap();
        assert_eq!(
            cmd,
            Command::ExecWorker(vec![
                "--shard".into(),
                "s.kca".into(),
                "--out".into(),
                "o.kca".into(),
            ])
        );
    }

    #[test]
    fn parses_cache_prune() {
        assert_eq!(
            parse(["cache", "prune", "--max-bytes", "1048576"]).unwrap(),
            Command::Cache(CacheArgs {
                action: CacheAction::Prune {
                    max_bytes: 1_048_576
                },
                dir: None,
            })
        );
        assert_eq!(
            parse([
                "cache",
                "prune",
                "--max-bytes",
                "0",
                "--cache-dir",
                "/tmp/kc"
            ])
            .unwrap(),
            Command::Cache(CacheArgs {
                action: CacheAction::Prune { max_bytes: 0 },
                dir: Some("/tmp/kc".into()),
            })
        );
        assert!(parse(["cache", "prune", "--max-bytes"]).is_err());
        assert!(parse(["cache", "prune", "--max-bytes", "x"]).is_err());
        // --max-bytes is prune-only.
        assert!(parse(["cache", "stat", "--max-bytes", "1"]).is_err());
    }

    #[test]
    fn parses_cache_subcommand() {
        assert_eq!(
            parse(["cache", "stat"]).unwrap(),
            Command::Cache(CacheArgs {
                action: CacheAction::Stat,
                dir: None,
            })
        );
        assert_eq!(
            parse(["cache", "clear", "--cache-dir", "/tmp/kc"]).unwrap(),
            Command::Cache(CacheArgs {
                action: CacheAction::Clear,
                dir: Some("/tmp/kc".into()),
            })
        );
        assert!(parse(["cache"]).is_err());
        assert!(parse(["cache", "prune"]).is_err());
        assert!(parse(["cache", "stat", "--verbose"]).is_err());
        assert!(parse(["cache", "stat", "--cache-dir"]).is_err());
    }

    #[test]
    fn parses_serve_subcommand() {
        assert_eq!(
            parse(["serve", "--socket", "/tmp/kc.sock"]).unwrap(),
            Command::Serve(ServeArgs {
                socket: Some("/tmp/kc.sock".into()),
                listen: None,
                tau: 128,
                memory_budget: None,
                snapshot_every: 0,
                cache_dir: None,
                trace: None,
            })
        );
        assert_eq!(
            parse([
                "serve",
                "--socket",
                "/tmp/kc.sock",
                "--tau",
                "32",
                "--memory-budget",
                "5000",
                "--snapshot-every",
                "1000",
                "--cache-dir",
                "/tmp/kc-cache",
                "--trace",
                "/tmp/serve.jsonl",
            ])
            .unwrap(),
            Command::Serve(ServeArgs {
                socket: Some("/tmp/kc.sock".into()),
                listen: None,
                tau: 32,
                memory_budget: Some(5000),
                snapshot_every: 1000,
                cache_dir: Some("/tmp/kc-cache".into()),
                trace: Some("/tmp/serve.jsonl".into()),
            })
        );
        // A TCP listener works alone or alongside the unix socket.
        assert_eq!(
            parse(["serve", "--listen", "tcp://127.0.0.1:4800"]).unwrap(),
            Command::Serve(ServeArgs {
                socket: None,
                listen: Some("tcp://127.0.0.1:4800".into()),
                tau: 128,
                memory_budget: None,
                snapshot_every: 0,
                cache_dir: None,
                trace: None,
            })
        );
        match parse([
            "serve",
            "--socket",
            "/tmp/kc.sock",
            "--listen",
            "tcp://127.0.0.1:0",
        ])
        .unwrap()
        {
            Command::Serve(args) => {
                assert_eq!(args.socket.as_deref(), Some("/tmp/kc.sock"));
                assert_eq!(args.listen.as_deref(), Some("tcp://127.0.0.1:0"));
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(["serve"]).is_err()); // no endpoint at all
        assert!(parse(["serve", "--socket", "/tmp/s", "--tau", "0"]).is_err());
        assert!(parse(["serve", "--socket", "/tmp/s", "--warp", "9"]).is_err());
    }

    #[test]
    fn parses_generate_and_info() {
        let cmd = parse([
            "generate",
            "--dataset",
            "power",
            "--n",
            "100",
            "--outliers",
            "5",
            "--output",
            "p.csv",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate(GenerateArgs {
                dataset: "power".into(),
                n: 100,
                outliers: 5,
                seed: 0,
                output: "p.csv".into(),
            })
        );
        let cmd = parse(["info", "--input", "p.csv"]).unwrap();
        assert_eq!(
            cmd,
            Command::Info(InfoArgs {
                input: "p.csv".into()
            })
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(parse([]).is_err());
        assert!(parse(["fly"]).is_err());
        assert!(parse(["cluster", "--k", "3"]).is_err()); // no input
        assert!(parse(["cluster", "--input", "a.csv"]).is_err()); // no k
        assert!(parse(["cluster", "--input", "a.csv", "--k", "x"]).is_err());
        assert!(parse(["cluster", "--input", "a.csv", "--k", "3", "--algo", "magic"]).is_err());
        assert!(parse(["cluster", "--input", "a.csv", "--k", "3", "--mu", "0"]).is_err());
        assert!(parse([
            "generate",
            "--dataset",
            "mnist",
            "--n",
            "5",
            "--output",
            "x"
        ])
        .is_err());
        assert!(parse(["cluster", "--input"]).is_err()); // dangling value
    }

    #[test]
    fn help_is_reported_through_error_channel() {
        let err = parse(["--help"]).unwrap_err();
        assert!(err.to_string().contains("USAGE"));
    }
}
