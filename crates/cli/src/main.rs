//! `kcenter` — command-line k-center clustering (with outliers) over CSV
//! files, built on the `kcenter-*` workspace.
//!
//! ```text
//! kcenter generate --dataset power --n 50000 --outliers 100 --output pts.csv
//! kcenter info     --input pts.csv
//! kcenter cluster  --input pts.csv --k 20 --z 100 --algo mr-randomized --output centers.csv
//! ```

mod args;
mod commands;

use args::Command;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = args::parse(raw.iter().map(String::as_str));
    let command = match parsed {
        Ok(command) => command,
        Err(err) => {
            eprintln!("{err}");
            eprintln!();
            eprintln!("{}", args::USAGE);
            std::process::exit(2);
        }
    };
    let result = match &command {
        Command::Cluster(a) => commands::run_cluster(a),
        Command::Generate(a) => commands::run_generate(a),
        Command::Info(a) => commands::run_info(a),
        Command::Cache(a) => commands::run_cache(a),
        Command::Serve(a) => commands::run_serve(a),
        // Hidden worker mode: `cluster --procs N` re-invokes this binary
        // with the `worker` subcommand for each round-1 partition.
        Command::ExecWorker(raw) => {
            std::process::exit(kcenter_exec::worker_main(raw.iter().cloned()))
        }
    };
    if let Err(err) = result {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
}
