//! Stream sources.
//!
//! Streaming algorithms consume any `IntoIterator`; the extra machinery here
//! is a bounded-channel source so examples can emulate a live feed (the
//! paper motivates the streaming setting with "data generated on the fly...
//! for instance in a streamed DBMS or a social media platform").

use crossbeam::channel::{bounded, Receiver, Sender};
use std::thread::JoinHandle;

/// A stream fed by a producer thread through a bounded channel.
///
/// Dropping the source disconnects the consumer; the producer thread is
/// joined on [`ChannelSource::join`].
pub struct ChannelSource<T> {
    receiver: Receiver<T>,
    producer: Option<JoinHandle<()>>,
}

impl<T: Send + 'static> ChannelSource<T> {
    /// Spawns `produce` on a background thread writing into a channel of
    /// capacity `buffer`, returning the consuming source.
    pub fn spawn<F>(buffer: usize, produce: F) -> Self
    where
        F: FnOnce(Sender<T>) + Send + 'static,
    {
        let (tx, rx) = bounded(buffer);
        let handle = std::thread::spawn(move || produce(tx));
        ChannelSource {
            receiver: rx,
            producer: Some(handle),
        }
    }

    /// Waits for the producer thread to finish (after the stream has been
    /// drained).
    pub fn join(mut self) {
        if let Some(handle) = self.producer.take() {
            handle.join().expect("stream producer panicked");
        }
    }

    /// Iterates over the stream items as they arrive.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.receiver.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_source_delivers_everything_in_order() {
        let source = ChannelSource::spawn(8, |tx| {
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = source.iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        source.join();
    }

    #[test]
    fn bounded_buffer_applies_backpressure() {
        // The producer can be at most `buffer + 1` items ahead of the
        // consumer; verify by consuming slowly and checking we still get all
        // items (i.e. the producer blocked instead of dropping).
        let source = ChannelSource::spawn(2, |tx| {
            for i in 0..50u32 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for item in source.iter() {
            got.push(item);
            std::thread::yield_now();
        }
        assert_eq!(got.len(), 50);
        source.join();
    }
}
