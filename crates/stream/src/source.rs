//! Stream sources.
//!
//! Streaming algorithms consume any `IntoIterator`; the extra machinery here
//! is a bounded-channel source so examples can emulate a live feed (the
//! paper motivates the streaming setting with "data generated on the fly...
//! for instance in a streamed DBMS or a social media platform").

use crossbeam::channel::{bounded, Receiver, Sender};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The producer's handle into a [`ChannelSource`] channel.
///
/// Consumer hang-up (the source dropped before draining — e.g. a serving
/// session evicted mid-stream) is part of the normal lifecycle, not an
/// error: [`Feeder::send`] reports it as `false` so the producer can stop
/// feeding, and never panics. A producer that keeps sending anyway just
/// keeps getting `false` back.
pub struct Feeder<T> {
    sender: Sender<T>,
    disconnected: Arc<AtomicBool>,
}

impl<T> Feeder<T> {
    /// Sends the next stream item.
    ///
    /// Returns `true` when the item was accepted (possibly after blocking
    /// on a full buffer) and `false` when the consumer has hung up — the
    /// graceful-stop signal. The item is dropped in that case, matching
    /// crossbeam's `SendError` contract (the value never reached anyone).
    pub fn send(&self, item: T) -> bool {
        match self.sender.send(item) {
            Ok(()) => true,
            Err(_) => {
                self.disconnected.store(true, Ordering::Release);
                false
            }
        }
    }

    /// Feeds every item of `items` in order; stops early and returns
    /// `false` if the consumer hangs up mid-iteration.
    pub fn feed<I: IntoIterator<Item = T>>(&self, items: I) -> bool {
        for item in items {
            if !self.send(item) {
                return false;
            }
        }
        true
    }
}

/// A stream fed by a producer thread through a bounded channel.
///
/// Dropping the source disconnects the consumer; the producer then observes
/// `false` from [`Feeder::send`] and winds down gracefully. The producer
/// thread is joined on [`ChannelSource::join`], which reports whether the
/// stream was fully drained.
pub struct ChannelSource<T> {
    receiver: Option<Receiver<T>>,
    producer: Option<JoinHandle<()>>,
    disconnected: Arc<AtomicBool>,
}

impl<T: Send + 'static> ChannelSource<T> {
    /// Spawns `produce` on a background thread writing into a channel of
    /// capacity `buffer`, returning the consuming source.
    pub fn spawn<F>(buffer: usize, produce: F) -> Self
    where
        F: FnOnce(Feeder<T>) + Send + 'static,
    {
        let (tx, rx) = bounded(buffer);
        let disconnected = Arc::new(AtomicBool::new(false));
        let feeder = Feeder {
            sender: tx,
            disconnected: Arc::clone(&disconnected),
        };
        let handle = std::thread::spawn(move || produce(feeder));
        ChannelSource {
            receiver: Some(rx),
            producer: Some(handle),
            disconnected,
        }
    }

    /// Waits for the producer thread to finish and reports whether the
    /// stream was **fully drained**: `true` iff the producer never saw a
    /// disconnect and the consumer left no item behind in the buffer.
    ///
    /// Safe to call even when the consumer stopped iterating early: the
    /// leftover items are discarded (and counted against the return value)
    /// while waiting, so a producer blocked on a full buffer finishes
    /// instead of deadlocking the join.
    ///
    /// # Panics
    ///
    /// Propagates a panic from the producer closure itself — a producer
    /// bug, not a lifecycle event.
    pub fn join(mut self) -> bool {
        let rx = self.receiver.take().expect("receiver owned until join");
        let mut undrained = 0usize;
        if let Some(handle) = self.producer.take() {
            // Keep the receiver alive and drain while waiting: the
            // producer must finish on its own terms (so `undrained` is an
            // exact count), but may be blocked on a full buffer.
            loop {
                while rx.try_recv().is_ok() {
                    undrained += 1;
                }
                if handle.is_finished() {
                    break;
                }
                std::thread::yield_now();
            }
            handle.join().expect("stream producer panicked");
            while rx.try_recv().is_ok() {
                undrained += 1;
            }
        }
        undrained == 0 && !self.disconnected.load(Ordering::Acquire)
    }

    /// Iterates over the stream items as they arrive.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.receiver
            .as_ref()
            .expect("receiver owned until join")
            .iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn channel_source_delivers_everything_in_order() {
        let source = ChannelSource::spawn(8, |tx| {
            assert!(tx.feed(0..100u32));
        });
        let got: Vec<u32> = source.iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(source.join(), "fully drained stream");
    }

    #[test]
    fn bounded_buffer_applies_backpressure() {
        // The producer can be at most `buffer + 1` items ahead of the
        // consumer; verify by consuming slowly and checking we still get all
        // items (i.e. the producer blocked instead of dropping).
        let source = ChannelSource::spawn(2, |tx| {
            for i in 0..50u32 {
                assert!(tx.send(i));
            }
        });
        let mut got = Vec::new();
        for item in source.iter() {
            got.push(item);
            std::thread::yield_now();
        }
        assert_eq!(got.len(), 50);
        assert!(source.join());
    }

    #[test]
    fn early_drop_of_the_source_stops_the_producer_gracefully() {
        // Eviction shape: the consumer drops the whole source mid-stream.
        // The producer must observe the hang-up as a `false` send — not a
        // panic — and run its epilogue.
        let stopped = Arc::new(AtomicUsize::new(0));
        let stopped_in_producer = Arc::clone(&stopped);
        let source = ChannelSource::spawn(2, move |tx| {
            let mut sent = 0usize;
            for i in 0..10_000u32 {
                if !tx.send(i) {
                    break;
                }
                sent += 1;
            }
            assert!(sent < 10_000, "consumer hung up early");
            stopped_in_producer.store(1, Ordering::Release);
        });
        // Consume a few items, then hang up entirely.
        let got: Vec<u32> = source.iter().take(3).collect();
        assert_eq!(got, vec![0, 1, 2]);
        drop(source);
        // The producer epilogue must run (graceful stop, no panic).
        while stopped.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
    }

    #[test]
    fn join_after_partial_consumption_reports_undrained_without_deadlock() {
        // The consumer stops iterating but still joins: the producer is
        // blocked on the tiny buffer, so join must unblock it by draining —
        // and report the stream as not fully drained.
        let source = ChannelSource::spawn(1, |tx| {
            tx.feed(0..100u32);
        });
        let got: Vec<u32> = source.iter().take(5).collect();
        assert_eq!(got.len(), 5);
        assert!(!source.join(), "leftover items mean not fully drained");
    }

    #[test]
    fn producer_panics_still_propagate() {
        let source = ChannelSource::spawn(4, |tx| {
            assert!(tx.send(1u32));
            panic!("producer bug");
        });
        let got: Vec<u32> = source.iter().collect();
        assert_eq!(got, vec![1]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| source.join()));
        assert!(result.is_err(), "a genuine producer panic is not swallowed");
    }
}
