#![warn(missing_docs)]
//! Streaming substrate: single-pass algorithm harness with throughput and
//! working-memory metering.
//!
//! The paper's Streaming model (§2.1) is a single processor with a small
//! working memory consuming the input as a sequence of items; the key
//! performance indicators are working-memory size and, experimentally,
//! throughput in points per second (§5.1–5.2, "ignoring the cost of
//! streaming data from memory"). This crate provides:
//!
//! * [`StreamingAlgorithm`] — the one-pass algorithm interface: `process`
//!   one item at a time, report `memory_items`, `finalize` into a result;
//! * [`run_stream`] — drives an algorithm over an iterator while metering
//!   throughput and peak working memory ([`StreamReport`]);
//! * [`source`] — stream sources: in-memory slices and a bounded
//!   crossbeam-channel source for producer/consumer pipelines (used by the
//!   `streaming_pipeline` example to emulate a live feed).

pub mod algorithm;
pub mod source;

pub use algorithm::{run_stream, MultiPass, StreamReport, StreamingAlgorithm};
pub use source::{ChannelSource, Feeder};
