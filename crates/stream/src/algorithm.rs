//! The single-pass algorithm interface and the metering driver.

use std::time::{Duration, Instant};

/// A one-pass streaming algorithm over items of type `T`.
///
/// Implementations must be able to answer [`memory_items`] at any moment:
/// the harness samples it after every insertion to report *peak* working
/// memory, the quantity the paper's space bounds are stated in (items
/// stored, e.g. `O((k+z)(96/ε)^D)` for the outliers algorithm).
///
/// [`memory_items`]: StreamingAlgorithm::memory_items
pub trait StreamingAlgorithm<T> {
    /// The result type produced once the stream is exhausted.
    type Output;

    /// Consumes the next stream item.
    fn process(&mut self, item: T);

    /// Number of items currently held in working memory.
    fn memory_items(&self) -> usize;

    /// Consumes the algorithm and produces the final result (the paper's
    /// end-of-pass computation, e.g. running `OutliersCluster` on the
    /// accumulated coreset).
    fn finalize(self) -> Self::Output;
}

/// Metering data from a [`run_stream`] execution.
#[derive(Clone, Copy, Debug)]
pub struct StreamReport {
    /// Number of items processed.
    pub items: usize,
    /// Peak working memory over the pass, in items.
    pub peak_memory_items: usize,
    /// Wall-clock time spent inside `process` calls (the pass itself).
    pub pass_time: Duration,
    /// Wall-clock time spent in `finalize`.
    pub finalize_time: Duration,
}

impl StreamReport {
    /// Throughput of the pass in points per second (the paper's Figs. 3/5
    /// metric). `None` if the pass took no measurable time.
    pub fn throughput(&self) -> Option<f64> {
        let secs = self.pass_time.as_secs_f64();
        (secs > 0.0).then(|| self.items as f64 / secs)
    }
}

/// Drives `algorithm` over `stream`, metering throughput and peak memory.
pub fn run_stream<T, A: StreamingAlgorithm<T>>(
    mut algorithm: A,
    stream: impl IntoIterator<Item = T>,
) -> (A::Output, StreamReport) {
    let mut items = 0usize;
    let mut peak = 0usize;
    // Accumulate time spent *inside* `process` only: a live (channel-fed)
    // stream can block arbitrarily long in the iterator's `next()`, and
    // counting that wait would make `throughput()` measure the producer,
    // not the algorithm.
    let mut pass_time = Duration::ZERO;
    for item in stream {
        let start = Instant::now();
        algorithm.process(item);
        pass_time += start.elapsed();
        items += 1;
        peak = peak.max(algorithm.memory_items());
    }
    let fin_start = Instant::now();
    let output = algorithm.finalize();
    let finalize_time = fin_start.elapsed();
    (
        output,
        StreamReport {
            items,
            peak_memory_items: peak,
            pass_time,
            finalize_time,
        },
    )
}

/// Helper for multi-pass algorithms (the paper's 2-pass D-oblivious
/// algorithm): carries per-pass reports and exposes the total peak memory.
#[derive(Clone, Debug, Default)]
pub struct MultiPass {
    /// One report per completed pass.
    pub passes: Vec<StreamReport>,
}

impl MultiPass {
    /// Records a completed pass.
    pub fn record(&mut self, report: StreamReport) {
        self.passes.push(report);
    }

    /// Number of passes over the input — the model's other key indicator.
    pub fn pass_count(&self) -> usize {
        self.passes.len()
    }

    /// Peak working memory across all passes, in items.
    pub fn peak_memory_items(&self) -> usize {
        self.passes
            .iter()
            .map(|p| p.peak_memory_items)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy algorithm: keeps the `cap` largest values seen.
    struct TopCap {
        cap: usize,
        kept: Vec<u64>,
    }

    impl StreamingAlgorithm<u64> for TopCap {
        type Output = Vec<u64>;

        fn process(&mut self, item: u64) {
            self.kept.push(item);
            if self.kept.len() > self.cap {
                self.kept.sort_unstable_by(|a, b| b.cmp(a));
                self.kept.truncate(self.cap);
            }
        }

        fn memory_items(&self) -> usize {
            self.kept.len()
        }

        fn finalize(mut self) -> Vec<u64> {
            self.kept.sort_unstable();
            self.kept
        }
    }

    #[test]
    fn run_stream_meters_and_finalizes() {
        let alg = TopCap {
            cap: 3,
            kept: Vec::new(),
        };
        let (out, report) = run_stream(alg, 0..100u64);
        assert_eq!(out, vec![97, 98, 99]);
        assert_eq!(report.items, 100);
        // Memory is sampled after each `process`, where the overflow slot
        // has already been truncated back to `cap`.
        assert_eq!(report.peak_memory_items, 3);
        assert!(report.throughput().unwrap_or(f64::INFINITY) > 0.0);
    }

    #[test]
    fn empty_stream_is_fine() {
        let alg = TopCap {
            cap: 2,
            kept: Vec::new(),
        };
        let (out, report) = run_stream(alg, std::iter::empty());
        assert!(out.is_empty());
        assert_eq!(report.items, 0);
        assert_eq!(report.peak_memory_items, 0);
    }

    #[test]
    fn pass_time_excludes_iterator_blocking() {
        // Regression: a deliberately slow producer must not inflate
        // `pass_time` — the report meters `process`, not the feed.
        use crate::ChannelSource;
        let delay = Duration::from_millis(5);
        let source = ChannelSource::spawn(1, move |tx| {
            for i in 0..20u64 {
                std::thread::sleep(delay);
                if !tx.send(i) {
                    return;
                }
            }
        });
        let alg = TopCap {
            cap: 3,
            kept: Vec::new(),
        };
        let wall = Instant::now();
        let (_, report) = run_stream(alg, source.iter());
        let wall = wall.elapsed();
        assert!(source.join());
        assert_eq!(report.items, 20);
        // The wall clock includes ~20 × 5 ms of producer sleeps; the pass
        // itself is 20 trivial `process` calls. Demand an order of
        // magnitude of headroom so the assertion is immune to CI jitter.
        assert!(
            wall >= delay * 20,
            "producer pacing must dominate wall time"
        );
        assert!(
            report.pass_time < wall / 10,
            "pass_time {:?} should exclude the {:?} spent blocked in next()",
            report.pass_time,
            wall
        );
    }

    #[test]
    fn multipass_aggregates() {
        let mut mp = MultiPass::default();
        let alg1 = TopCap {
            cap: 5,
            kept: Vec::new(),
        };
        let (_, r1) = run_stream(alg1, 0..50u64);
        mp.record(r1);
        let alg2 = TopCap {
            cap: 2,
            kept: Vec::new(),
        };
        let (_, r2) = run_stream(alg2, 0..50u64);
        mp.record(r2);
        assert_eq!(mp.pass_count(), 2);
        assert_eq!(mp.peak_memory_items(), 5);
    }
}
