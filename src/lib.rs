#![warn(missing_docs)]
//! # kcenter — coreset-based k-center clustering, with and without outliers
//!
//! A from-scratch Rust implementation of
//! *Solving k-center Clustering (with Outliers) in MapReduce and Streaming,
//! almost as Accurately as Sequentially* (Ceccarello, Pietracaprina, Pucci —
//! VLDB 2019), including every substrate and baseline its evaluation uses.
//!
//! This crate is a façade re-exporting the workspace:
//!
//! * [`metric`] — points, metrics, MEB, selection, doubling-dimension
//!   estimation ([`kcenter_metric`]);
//! * [`data`] — dataset generators, outlier injection, inflation
//!   ([`kcenter_data`]);
//! * [`mapreduce`] — the MapReduce simulation substrate
//!   ([`kcenter_mapreduce`]);
//! * [`stream`] — the streaming harness ([`kcenter_stream`]);
//! * [`core`] — the paper's algorithms ([`kcenter_core`]);
//! * [`baselines`] — Charikar et al. 2001/2004, McCutchen–Khuller 2008,
//!   Malkomes et al. 2015 ([`kcenter_baselines`]);
//! * [`store`] — the persistent on-disk artifact cache for distance
//!   matrices, coresets, and solutions ([`kcenter_store`]; opt-in via
//!   `KCENTER_CACHE_DIR` / [`kcenter_store::install_from_env`]).
//!
//! ## Quick start
//!
//! ```
//! use kcenter::core::mapreduce_kcenter::{mr_kcenter, MrKCenterConfig};
//! use kcenter::core::CoresetSpec;
//! use kcenter::data::higgs_like;
//! use kcenter::metric::Euclidean;
//!
//! let points = higgs_like(2_000, 42);
//! let result = mr_kcenter(
//!     &points,
//!     &Euclidean,
//!     &MrKCenterConfig {
//!         k: 10,
//!         ell: 4,
//!         coreset: CoresetSpec::Multiplier { mu: 4 },
//!         seed: 1,
//!     },
//! )
//! .unwrap();
//! println!("radius = {:.3}", result.clustering.radius);
//! assert_eq!(result.clustering.k(), 10);
//! ```
//!
//! See `examples/` for end-to-end scenarios (outlier detection, streaming
//! pipelines, sequential comparison) and `crates/bench` for the binaries
//! regenerating every figure of the paper.

pub use kcenter_baselines as baselines;
pub use kcenter_core as core;
pub use kcenter_data as data;
pub use kcenter_mapreduce as mapreduce;
pub use kcenter_metric as metric;
pub use kcenter_store as store;
pub use kcenter_stream as stream;

/// The most common imports in one place.
pub mod prelude {
    pub use kcenter_core::coreset::{CoresetSpec, WeightedCoreset, WeightedPoint};
    pub use kcenter_core::mapreduce_kcenter::{mr_kcenter, MrKCenterConfig};
    pub use kcenter_core::mapreduce_outliers::{
        mr_kcenter_outliers, MrOutliersConfig, MrOutliersVariant, MrPartitioning,
    };
    pub use kcenter_core::sequential::{sequential_kcenter_outliers, SequentialOutliersConfig};
    pub use kcenter_core::solution::{radius, radius_with_outliers, Clustering};
    pub use kcenter_core::streaming_kcenter::CoresetStream;
    pub use kcenter_core::streaming_outliers::CoresetOutliers;
    pub use kcenter_core::two_pass::two_pass_outliers;
    pub use kcenter_metric::{Euclidean, Metric, Point};
    pub use kcenter_stream::{run_stream, StreamingAlgorithm};
}
