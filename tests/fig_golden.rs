//! Golden-output pins for the figure binaries, extending the
//! `cli_smoke.rs` approach to the experiment sweeps: `fig4_mr_outliers`
//! and `fig7_scaling_procs` run end-to-end on a small fixed-seed
//! configuration and their *deterministic* sections (approximation-ratio
//! tables, union sizes, radii, matrix-build accounting — everything
//! except wall-clock columns) are pinned to exact strings.
//!
//! Each binary additionally runs under `RAYON_NUM_THREADS=1` and `=4` and
//! the two outputs must match bit-for-bit — the determinism proof for the
//! rayon shim's steal-feedback adaptive splitter: steals (and therefore
//! chunk layouts) differ between the runs, the reported numbers may not.
//! The CI workflow runs this suite at both thread counts on every push.
//!
//! The `*_cache_*` tests extend the contract to the **persistent artifact
//! store**: with `KCENTER_CACHE_DIR` set, a binary is run cold (empty
//! cache) and then warm, and the warm pass must perform zero matrix
//! builds while producing bit-identical output — the proof that
//! persistence changes *cost*, never *results*. CI runs these in their
//! own `cache-determinism` job, again at both thread counts.

use std::path::PathBuf;
use std::process::Command;

/// Runs a kcenter-bench binary with the given args, thread count, and
/// extra environment, returning (stdout, stderr).
fn run_fig_env(bin: &str, args: &[&str], threads: &str, env: &[(&str, &str)]) -> (String, String) {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut command = Command::new(&cargo);
    command
        .args([
            "run",
            "--release",
            "-q",
            "-p",
            "kcenter-bench",
            "--bin",
            bin,
            "--",
        ])
        .args(args)
        .env("RAYON_NUM_THREADS", threads)
        // Isolate from the caller's environment: an ambient cache dir
        // would silently activate the persistent store in the *golden*
        // runs (changing the pinned build accounting) and write test
        // artifacts into the user's real cache. Cache tests opt back in
        // via an explicit `env` pair below.
        .env_remove("KCENTER_CACHE_DIR")
        // An ambient trace file must not be clobbered by golden runs (the
        // trace-invariance test opts back in explicitly).
        .env_remove(kcenter_obs::TRACE_ENV)
        .current_dir(manifest_dir);
    for (key, value) in env {
        command.env(key, value);
    }
    let output = command
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(
        output.status.success(),
        "{bin} exited with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// Runs a kcenter-bench binary with the given args and thread count,
/// returning stdout.
fn run_fig(bin: &str, args: &[&str], threads: &str) -> String {
    run_fig_env(bin, args, threads, &[]).0
}

/// Parses the `cache-accounting: builds=B hits=H misses=M` line the
/// binaries print to stderr.
fn cache_accounting(stderr: &str) -> (usize, usize, usize) {
    let line = stderr
        .lines()
        .find(|l| l.starts_with("cache-accounting:"))
        .unwrap_or_else(|| panic!("no cache-accounting line in stderr:\n{stderr}"));
    // The shared kcenter-obs parser doubles as a format pin: if the
    // emitter's shape drifts, this stops parsing and the suite fails.
    kcenter_obs::parse_cache_accounting(line)
        .unwrap_or_else(|| panic!("unparsable cache-accounting line {line:?}"))
}

/// A fresh, empty cache directory for one cold/warm scenario.
fn fresh_cache_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("kcenter-cache-determinism")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create cache dir");
    dir
}

/// Collapses runs of whitespace so pins do not depend on column padding.
fn normalize(line: &str) -> String {
    line.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// The deterministic subset of fig4's output: dataset headers, the
/// approximation-ratio rows (the only rows containing `±`), the best-radius
/// lines, and the matrix-build accounting. Running-time rows are dropped.
fn fig4_deterministic(out: &str) -> Vec<String> {
    out.lines()
        .filter(|l| {
            l.starts_with("---")
                || l.contains('±')
                || l.starts_with("best radius found:")
                || l.starts_with("distance matrices built:")
        })
        .map(normalize)
        .collect()
}

/// The deterministic subset of fig7's output: dataset headers plus the
/// first four columns of every table row (`l`, `τ_ℓ`, union size, radius)
/// and the matrix-build accounting; time and speedup columns are dropped.
fn fig7_deterministic(out: &str) -> Vec<String> {
    out.lines()
        .filter_map(|l| {
            if l.starts_with("---") || l.starts_with("distance matrices built:") {
                return Some(normalize(l));
            }
            let fields: Vec<&str> = l.split_whitespace().collect();
            // Table rows start with the processor count ℓ.
            if fields.len() >= 4 && fields[0].parse::<usize>().is_ok() {
                return Some(fields[..4].join(" "));
            }
            None
        })
        .collect()
}

const FIG_ARGS: &[&str] = &["--n", "400", "--reps", "1"];

#[test]
fn fig4_golden_output_is_pinned_and_thread_invariant() {
    let single = run_fig("fig4_mr_outliers", FIG_ARGS, "1");
    let multi = run_fig("fig4_mr_outliers", FIG_ARGS, "4");
    let got = fig4_deterministic(&single);
    assert_eq!(
        got,
        fig4_deterministic(&multi),
        "fig4 output must be bit-identical at 1 and 4 threads"
    );

    let expected: Vec<String> = "\
--- Higgs (k = 20, z = 50) ---
deterministic 1.004±0.000 1.004±0.000 1.004±0.000 1.004±0.000
randomized 1.000±0.000 1.000±0.000 1.000±0.000 1.000±0.000
best radius found: 16.0798
--- Power (k = 20, z = 50) ---
deterministic 1.000±0.000 1.000±0.000 1.000±0.000 1.000±0.000
randomized 1.000±0.000 1.000±0.000 1.000±0.000 1.000±0.000
best radius found: 39.3459
--- Wiki (k = 20, z = 50) ---
deterministic 1.022±0.000 1.022±0.000 1.022±0.000 1.022±0.000
randomized 1.000±0.000 1.000±0.000 1.000±0.000 1.000±0.000
best radius found: 28.3208
distance matrices built: 24"
        .lines()
        .map(String::from)
        .collect();
    assert_eq!(
        got, expected,
        "fig4 golden output drifted (update deliberately on real changes):\n{single}"
    );
}

#[test]
fn fig7_golden_output_is_pinned_and_thread_invariant() {
    let single = run_fig("fig7_scaling_procs", FIG_ARGS, "1");
    let multi = run_fig("fig7_scaling_procs", FIG_ARGS, "4");
    let got = fig7_deterministic(&single);
    assert_eq!(
        got,
        fig7_deterministic(&multi),
        "fig7 output must be bit-identical at 1 and 4 threads"
    );

    let expected: Vec<String> = "\
--- Higgs (k = 20, z = 50) ---
1 4960 450 16.174672
2 2480 450 16.028061
4 1240 450 16.048267
8 620 450 15.874394
16 310 450 15.874394
--- Power (k = 20, z = 50) ---
1 4960 450 39.559463
2 2480 450 40.384649
4 1240 450 39.276391
8 620 450 39.313806
16 310 450 39.300589
--- Wiki (k = 20, z = 50) ---
1 4960 450 28.929857
2 2480 450 28.959500
4 1240 450 28.290871
8 620 450 28.618784
16 310 450 27.867000
distance matrices built: 15"
        .lines()
        .map(String::from)
        .collect();
    assert_eq!(
        got, expected,
        "fig7 golden output drifted (update deliberately on real changes):\n{single}"
    );
}

/// Tracing must be invisible to the golden contract: the same seeded
/// run with `KCENTER_TRACE` set writes all trace bytes to the named
/// file and **none** to stdout, so its stdout is byte-identical to an
/// untraced run. `--deterministic` blanks the wall-clock columns, so
/// the comparison really is every byte.
#[test]
fn ablation_stdout_is_byte_identical_with_tracing_enabled() {
    let args: &[&str] = &["--n", "800", "--deterministic"];
    let trace =
        std::env::temp_dir().join(format!("kcenter-fig-trace-{}.jsonl", std::process::id()));
    let trace_str = trace.to_str().expect("utf8 trace path");

    let (plain_out, _) = run_fig_env("ablation_radius_search", args, "1", &[]);
    let (traced_out, _) = run_fig_env(
        "ablation_radius_search",
        args,
        "1",
        &[(kcenter_obs::TRACE_ENV, trace_str)],
    );
    assert_eq!(
        plain_out, traced_out,
        "enabling the trace sink must not change a single stdout byte"
    );

    // The sink really was live: the file opens with the schema meta
    // record, and every line is valid JSON.
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let first = text.lines().next().expect("meta record");
    let meta = kcenter_obs::json::parse(first).expect("meta record parses");
    assert_eq!(
        meta.get("schema").and_then(kcenter_obs::json::Json::as_str),
        Some(kcenter_obs::TRACE_SCHEMA)
    );
    for line in text.lines() {
        kcenter_obs::json::parse(line).unwrap_or_else(|e| panic!("bad trace line {line:?}: {e}"));
    }
    let _ = std::fs::remove_file(&trace);
}

/// The acceptance gate for the persistent artifact store: running the
/// radius-search ablation *cold* (empty `KCENTER_CACHE_DIR`) prices and
/// persists every coreset matrix; rerunning it *warm* performs **zero**
/// matrix builds (`matrix_build_count() == 0`, `store_hit_count() >= 1` —
/// read off the stderr accounting) and its stdout is **bit-identical** to
/// the cold run's, at 1 thread and at 4. `--deterministic` blanks the
/// wall-clock columns so "bit-identical" really means every byte.
#[test]
fn ablation_cache_cold_then_warm_is_deterministic_with_zero_builds() {
    let dir = fresh_cache_dir("ablation");
    let cache = &[("KCENTER_CACHE_DIR", dir.to_str().expect("utf8 dir"))];
    let args: &[&str] = &["--n", "1500", "--deterministic"];

    let (cold_out, cold_err) = run_fig_env("ablation_radius_search", args, "1", cache);
    let (builds, hits, misses) = cache_accounting(&cold_err);
    assert!(builds > 0, "cold run must build matrices (got {builds})");
    assert_eq!(hits, 0, "cold run on an empty cache cannot hit");
    assert_eq!(misses, builds, "every cold build is a store miss");

    for threads in ["1", "4"] {
        let (warm_out, warm_err) = run_fig_env("ablation_radius_search", args, threads, cache);
        let (builds, hits, misses) = cache_accounting(&warm_err);
        assert_eq!(
            builds, 0,
            "warm run at {threads} threads must perform zero matrix builds"
        );
        assert!(hits >= 1, "warm run must hit the store");
        assert_eq!(misses, 0, "warm run must not miss");
        assert_eq!(
            cold_out, warm_out,
            "warm stdout at {threads} threads must be bit-identical to the cold run"
        );
    }
}

/// The same cold/warm contract for a full figure sweep (fig4 drives the
/// MapReduce round-2 path): every scientific line of stdout is identical
/// cold vs warm and across thread counts; only the final
/// "distance matrices built" accounting line may differ (24 cold → 0
/// warm, by design — that drop *is* the feature).
#[test]
fn fig4_cache_warm_run_is_identical_except_build_accounting() {
    let dir = fresh_cache_dir("fig4");
    let cache = &[("KCENTER_CACHE_DIR", dir.to_str().expect("utf8 dir"))];

    // The deterministic stdout subset (ratio rows, best radii), minus the
    // build-accounting line that legitimately reflects cache state.
    // Wall-clock rows are excluded by fig4_deterministic already; the
    // fully byte-identical variant of this contract is covered by the
    // ablation test above via --deterministic.
    let science = |out: &str| -> Vec<String> {
        fig4_deterministic(out)
            .into_iter()
            .filter(|l| !l.starts_with("distance matrices built:"))
            .collect()
    };

    let (cold_out, cold_err) = run_fig_env("fig4_mr_outliers", FIG_ARGS, "1", cache);
    let (cold_builds, cold_hits, cold_misses) = cache_accounting(&cold_err);
    assert!(cold_builds > 0);
    assert_eq!(cold_misses, cold_builds);
    // Even the cold run deduplicates: several sweep configurations derive
    // identical coreset unions, and every re-derivation after the first
    // is already served from the store mid-run.
    let cold_resolves = cold_builds + cold_hits;

    let (warm_out, warm_err) = run_fig_env("fig4_mr_outliers", FIG_ARGS, "4", cache);
    let (warm_builds, warm_hits, _) = cache_accounting(&warm_err);
    assert_eq!(warm_builds, 0, "warm fig4 must rebuild nothing");
    assert_eq!(
        warm_hits, cold_resolves,
        "warm fig4 must load every matrix the cold run resolved"
    );
    assert_eq!(
        science(&cold_out),
        science(&warm_out),
        "fig4 science must be bit-identical cold vs warm (1 vs 4 threads)"
    );
    assert!(
        cold_out.contains(&format!("distance matrices built: {cold_builds}")),
        "cold stdout accounting must match stderr accounting"
    );
    assert!(
        warm_out.contains("distance matrices built: 0"),
        "warm stdout must report zero builds"
    );
}
