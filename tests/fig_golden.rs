//! Golden-output pins for the figure binaries, extending the
//! `cli_smoke.rs` approach to the experiment sweeps: `fig4_mr_outliers`
//! and `fig7_scaling_procs` run end-to-end on a small fixed-seed
//! configuration and their *deterministic* sections (approximation-ratio
//! tables, union sizes, radii, matrix-build accounting — everything
//! except wall-clock columns) are pinned to exact strings.
//!
//! Each binary additionally runs under `RAYON_NUM_THREADS=1` and `=4` and
//! the two outputs must match bit-for-bit — the determinism proof for the
//! rayon shim's steal-feedback adaptive splitter: steals (and therefore
//! chunk layouts) differ between the runs, the reported numbers may not.
//! The CI workflow runs this suite at both thread counts on every push.

use std::process::Command;

/// Runs a kcenter-bench binary with the given args and thread count,
/// returning stdout.
fn run_fig(bin: &str, args: &[&str], threads: &str) -> String {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(&cargo)
        .args([
            "run",
            "--release",
            "-q",
            "-p",
            "kcenter-bench",
            "--bin",
            bin,
            "--",
        ])
        .args(args)
        .env("RAYON_NUM_THREADS", threads)
        .current_dir(manifest_dir)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(
        output.status.success(),
        "{bin} exited with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// Collapses runs of whitespace so pins do not depend on column padding.
fn normalize(line: &str) -> String {
    line.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// The deterministic subset of fig4's output: dataset headers, the
/// approximation-ratio rows (the only rows containing `±`), the best-radius
/// lines, and the matrix-build accounting. Running-time rows are dropped.
fn fig4_deterministic(out: &str) -> Vec<String> {
    out.lines()
        .filter(|l| {
            l.starts_with("---")
                || l.contains('±')
                || l.starts_with("best radius found:")
                || l.starts_with("distance matrices built:")
        })
        .map(normalize)
        .collect()
}

/// The deterministic subset of fig7's output: dataset headers plus the
/// first four columns of every table row (`l`, `τ_ℓ`, union size, radius)
/// and the matrix-build accounting; time and speedup columns are dropped.
fn fig7_deterministic(out: &str) -> Vec<String> {
    out.lines()
        .filter_map(|l| {
            if l.starts_with("---") || l.starts_with("distance matrices built:") {
                return Some(normalize(l));
            }
            let fields: Vec<&str> = l.split_whitespace().collect();
            // Table rows start with the processor count ℓ.
            if fields.len() >= 4 && fields[0].parse::<usize>().is_ok() {
                return Some(fields[..4].join(" "));
            }
            None
        })
        .collect()
}

const FIG_ARGS: &[&str] = &["--n", "400", "--reps", "1"];

#[test]
fn fig4_golden_output_is_pinned_and_thread_invariant() {
    let single = run_fig("fig4_mr_outliers", FIG_ARGS, "1");
    let multi = run_fig("fig4_mr_outliers", FIG_ARGS, "4");
    let got = fig4_deterministic(&single);
    assert_eq!(
        got,
        fig4_deterministic(&multi),
        "fig4 output must be bit-identical at 1 and 4 threads"
    );

    let expected: Vec<String> = "\
--- Higgs (k = 20, z = 50) ---
deterministic 1.004±0.000 1.004±0.000 1.004±0.000 1.004±0.000
randomized 1.000±0.000 1.000±0.000 1.000±0.000 1.000±0.000
best radius found: 16.0798
--- Power (k = 20, z = 50) ---
deterministic 1.000±0.000 1.000±0.000 1.000±0.000 1.000±0.000
randomized 1.000±0.000 1.000±0.000 1.000±0.000 1.000±0.000
best radius found: 39.3459
--- Wiki (k = 20, z = 50) ---
deterministic 1.022±0.000 1.022±0.000 1.022±0.000 1.022±0.000
randomized 1.000±0.000 1.000±0.000 1.000±0.000 1.000±0.000
best radius found: 28.3208
distance matrices built: 24"
        .lines()
        .map(String::from)
        .collect();
    assert_eq!(
        got, expected,
        "fig4 golden output drifted (update deliberately on real changes):\n{single}"
    );
}

#[test]
fn fig7_golden_output_is_pinned_and_thread_invariant() {
    let single = run_fig("fig7_scaling_procs", FIG_ARGS, "1");
    let multi = run_fig("fig7_scaling_procs", FIG_ARGS, "4");
    let got = fig7_deterministic(&single);
    assert_eq!(
        got,
        fig7_deterministic(&multi),
        "fig7 output must be bit-identical at 1 and 4 threads"
    );

    let expected: Vec<String> = "\
--- Higgs (k = 20, z = 50) ---
1 4960 450 16.174672
2 2480 450 16.028061
4 1240 450 16.048267
8 620 450 15.874394
16 310 450 15.874394
--- Power (k = 20, z = 50) ---
1 4960 450 39.559463
2 2480 450 40.384649
4 1240 450 39.276391
8 620 450 39.313806
16 310 450 39.300589
--- Wiki (k = 20, z = 50) ---
1 4960 450 28.929857
2 2480 450 28.959500
4 1240 450 28.290871
8 620 450 28.618784
16 310 450 27.867000
distance matrices built: 15"
        .lines()
        .map(String::from)
        .collect();
    assert_eq!(
        got, expected,
        "fig7 golden output drifted (update deliberately on real changes):\n{single}"
    );
}
