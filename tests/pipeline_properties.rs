//! Cross-crate property tests: whole pipelines on randomized instances.

use proptest::prelude::*;

use kcenter::core::brute_force::{optimal_kcenter, optimal_kcenter_outliers};
use kcenter::data::csv::{read_points, write_points};
use kcenter::prelude::*;

fn arb_points(min_n: usize, max_n: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        prop::collection::vec(-50.0..50.0f64, 2).prop_map(Point::new),
        min_n..max_n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full MapReduce pipeline stays within (2+ε)·OPT on arbitrary
    /// small instances, for every partition count.
    #[test]
    fn mr_pipeline_respects_theorem_one(
        points in arb_points(6, 16),
        k in 1usize..4,
        ell in 1usize..4,
    ) {
        prop_assume!(k < points.len());
        let (_, opt) = optimal_kcenter(&points, &Euclidean, k);
        let result = mr_kcenter(
            &points,
            &Euclidean,
            &MrKCenterConfig {
                k,
                ell,
                coreset: CoresetSpec::Multiplier { mu: 8 },
                seed: 0,
            },
        )
        .unwrap();
        // µ = 8 on tiny partitions saturates the coresets, so the bound is
        // essentially GMM-on-union ≤ 2·OPT plus negligible proxy error.
        prop_assert!(
            result.clustering.radius <= 2.0 * opt + 1e-9,
            "radius {} vs 2·OPT = {}",
            result.clustering.radius,
            2.0 * opt
        );
    }

    /// The outlier pipeline respects the Theorem 2 envelope with ε̂ = 1/6
    /// (⇒ (3 + 6·ε̂) = 4 factor) on arbitrary instances.
    #[test]
    fn mr_outliers_pipeline_respects_theorem_two(
        points in arb_points(8, 16),
        k in 1usize..3,
        z in 0usize..3,
        ell in 1usize..3,
    ) {
        prop_assume!(k + z < points.len());
        let (_, opt) = optimal_kcenter_outliers(&points, &Euclidean, k, z);
        let config = MrOutliersConfig::deterministic(
            k,
            z,
            ell,
            CoresetSpec::Multiplier { mu: 8 },
        );
        let result = mr_kcenter_outliers(&points, &Euclidean, &config).unwrap();
        prop_assert!(
            result.clustering.radius <= 4.0 * opt + 1e-9,
            "radius {} vs 4·OPT = {opt}",
            result.clustering.radius
        );
        // The coreset-level uncovered weight never exceeds z.
        prop_assert!(result.uncovered_weight <= z as u64);
    }

    /// Streaming with outliers returns ≤ k centers and never exceeds its
    /// memory budget, whatever the stream.
    #[test]
    fn streaming_outliers_budget_and_size(
        points in arb_points(2, 40),
        k in 1usize..3,
        z in 0usize..3,
        mu in 1usize..4,
    ) {
        let tau = mu * (k + z).max(1);
        let alg = CoresetOutliers::new(Euclidean, k, z, tau.max(k + z), 0.5);
        let (out, report) = run_stream(alg, points.iter().cloned());
        prop_assert!(out.centers.len() <= k);
        prop_assert!(report.peak_memory_items <= tau.max(k + z) + 1);
    }

    /// Randomized and deterministic MapReduce both solve planted instances
    /// whose outliers are far from the data.
    #[test]
    fn planted_outliers_always_excluded(
        seed in 0u64..500,
        ell in 1usize..4,
        randomized in proptest::bool::ANY,
    ) {
        let mut points = kcenter::data::higgs_like(400, seed);
        let z = 6;
        let report = kcenter::data::inject_outliers(&mut points, z, seed + 1);
        let config = if randomized {
            MrOutliersConfig::randomized(4, z, ell, CoresetSpec::Multiplier { mu: 4 })
        } else {
            MrOutliersConfig::deterministic(4, z, ell, CoresetSpec::Multiplier { mu: 4 })
        };
        let result = mr_kcenter_outliers(&points, &Euclidean, &config).unwrap();
        prop_assert!(
            result.clustering.radius < 3.0 * report.meb_radius,
            "radius {} vs MEB {}",
            result.clustering.radius,
            report.meb_radius
        );
    }

    /// CSV round-trips arbitrary generated datasets exactly.
    #[test]
    fn csv_roundtrip_is_lossless(points in arb_points(1, 30)) {
        let mut buf = Vec::new();
        write_points(&mut buf, &points).unwrap();
        let back = read_points(buf.as_slice()).unwrap();
        prop_assert_eq!(back, points);
    }

    /// The Fig. 2 monotonicity claim in property form: on *clustered* data
    /// (where coresets matter), µ = 8 never does much worse than µ = 1.
    #[test]
    fn bigger_coresets_never_much_worse(seed in 0u64..200) {
        let points = kcenter::data::power_like(600, seed);
        let run = |mu: usize| {
            mr_kcenter(
                &points,
                &Euclidean,
                &MrKCenterConfig {
                    k: 6,
                    ell: 3,
                    coreset: CoresetSpec::Multiplier { mu },
                    seed,
                },
            )
            .unwrap()
            .clustering
            .radius
        };
        let r1 = run(1);
        let r8 = run(8);
        prop_assert!(r8 <= r1 * 1.35 + 1e-9, "µ=8 ({r8}) ≫ µ=1 ({r1})");
    }
}
