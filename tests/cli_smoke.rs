//! Golden-output smoke test for the `kcenter` CLI, mirroring
//! `examples_smoke.rs`: the binary must run end-to-end and its *output
//! must not drift*. Every algorithm in the workspace is deterministic
//! under a fixed seed and every parallel reduction is chunk-invariant, so
//! the reported radii are pinned to exact strings; a change here means a
//! genuine behaviour change that must be reviewed (and these lines
//! updated deliberately).

use std::path::PathBuf;
use std::process::Command;

fn run_kcenter(args: &[&str]) -> String {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(&cargo)
        .args([
            "run",
            "--release",
            "-p",
            "kcenter-cli",
            "--bin",
            "kcenter",
            "--",
        ])
        .args(args)
        // The golden pins assume the persistent artifact cache is off; an
        // ambient KCENTER_CACHE_DIR must not leak into the pinned runs.
        .env_remove("KCENTER_CACHE_DIR")
        .current_dir(manifest_dir)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn kcenter {args:?}: {e}"));
    assert!(
        output.status.success(),
        "kcenter {args:?} exited with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn temp_csv(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("kcenter-cli-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_cluster_and_outliers_golden_output() {
    let data = temp_csv("smoke_points.csv");
    let data_str = data.to_string_lossy().into_owned();

    // `generate` is seeded: exactly 200 higgs-like points + 3 injected
    // outliers, bit-identical on every run.
    let out = run_kcenter(&[
        "generate",
        "--dataset",
        "higgs",
        "--n",
        "200",
        "--outliers",
        "3",
        "--seed",
        "4",
        "--output",
        &data_str,
    ]);
    assert!(
        out.contains("wrote 203 points (7-dimensional)"),
        "generate drifted:\n{out}"
    );

    // Plain k-center via GMM: deterministic traversal, pinned radius.
    let out = run_kcenter(&[
        "cluster", "--input", &data_str, "--k", "4", "--algo", "gmm", "--seed", "1",
    ]);
    assert!(
        out.contains("loaded 203 points of dimension 7"),
        "load line drifted:\n{out}"
    );
    assert!(
        out.contains("algo = Gmm, k = 4, z = 0"),
        "config line drifted:\n{out}"
    );
    let radius_line = out
        .lines()
        .find(|l| l.starts_with("radius = "))
        .unwrap_or_else(|| panic!("no radius line in:\n{out}"));
    // Golden value: GMM on the seeded dataset under the default z-score
    // normalization (which compresses the planted outliers).
    assert!(
        radius_line.starts_with("radius = 0.374312"),
        "GMM radius drifted: {radius_line}"
    );

    // Outliers via the Charikar baseline (z = 3 discards the planted
    // outliers): deterministic binary search, pinned cluster-scale radius.
    let out = run_kcenter(&[
        "cluster", "--input", &data_str, "--k", "4", "--z", "3", "--algo", "charikar", "--seed",
        "1",
    ]);
    assert!(
        out.contains("algo = Charikar, k = 4, z = 3"),
        "config line drifted:\n{out}"
    );
    let radius_line = out
        .lines()
        .find(|l| l.starts_with("radius = "))
        .unwrap_or_else(|| panic!("no radius line in:\n{out}"));
    assert!(
        radius_line.starts_with("radius = "),
        "no radius: {radius_line}"
    );
    let value: f64 = radius_line
        .trim_start_matches("radius = ")
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        value < 0.374312,
        "Charikar with z = 3 should beat the plain-GMM radius: {radius_line}"
    );
    // Pin the exact golden radius (updated deliberately on real changes).
    assert!(
        radius_line.starts_with("radius = 0.265906"),
        "Charikar radius drifted: {radius_line}"
    );
}
