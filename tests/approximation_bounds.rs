//! Approximation-factor assertions against the brute-force optimum for
//! every algorithm in the workspace, on instances small enough for exact
//! enumeration.

use kcenter::baselines::charikar_kcenter_outliers;
use kcenter::baselines::DoublingKCenter;
use kcenter::core::brute_force::{optimal_kcenter, optimal_kcenter_outliers};
use kcenter::core::gmm::gmm_select;
use kcenter::prelude::*;

/// A deterministic, mildly irregular 1-D instance.
fn instance(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let x = ((i * 37) % 101) as f64 + ((i * 13) % 7) as f64 * 0.25;
            Point::new(vec![x])
        })
        .collect()
}

#[test]
fn gmm_within_factor_two() {
    for k in [2usize, 3, 4] {
        let points = instance(16);
        let (_, opt) = optimal_kcenter(&points, &Euclidean, k);
        let result = gmm_select(&points, &Euclidean, k, 0);
        assert!(
            result.radius <= 2.0 * opt + 1e-9,
            "k={k}: {} > 2·{opt}",
            result.radius
        );
    }
}

#[test]
fn mr_kcenter_within_two_plus_eps() {
    // µ = 8 makes the coreset error negligible; bound is then ~2·OPT with
    // slack for the ε term.
    let points = instance(18);
    let k = 3;
    let (_, opt) = optimal_kcenter(&points, &Euclidean, k);
    let result = mr_kcenter(
        &points,
        &Euclidean,
        &MrKCenterConfig {
            k,
            ell: 2,
            coreset: CoresetSpec::Multiplier { mu: 8 },
            seed: 1,
        },
    )
    .unwrap();
    assert!(
        result.clustering.radius <= 3.0 * opt + 1e-9,
        "{} > (2+ε)·{opt}",
        result.clustering.radius
    );
}

#[test]
fn mr_outliers_within_three_plus_eps() {
    let mut points = instance(14);
    points.push(Point::new(vec![5_000.0]));
    points.push(Point::new(vec![-4_000.0]));
    let (k, z) = (2, 2);
    let (_, opt) = optimal_kcenter_outliers(&points, &Euclidean, k, z);
    let config = MrOutliersConfig::deterministic(k, z, 2, CoresetSpec::Multiplier { mu: 8 });
    let result = mr_kcenter_outliers(&points, &Euclidean, &config).unwrap();
    // ε̂ = 1/6 → ε = 1 → (3+1)·OPT.
    assert!(
        result.clustering.radius <= 4.0 * opt + 1e-9,
        "{} > 4·{opt}",
        result.clustering.radius
    );
}

#[test]
fn sequential_within_three_plus_eps() {
    let mut points = instance(14);
    points.push(Point::new(vec![9_999.0]));
    let (k, z) = (3, 1);
    let (_, opt) = optimal_kcenter_outliers(&points, &Euclidean, k, z);
    let result =
        sequential_kcenter_outliers(&points, &Euclidean, &SequentialOutliersConfig::new(k, z, 8))
            .unwrap();
    assert!(
        result.clustering.radius <= 4.0 * opt + 1e-9,
        "{} > 4·{opt}",
        result.clustering.radius
    );
}

#[test]
fn streaming_outliers_within_theorem_bound() {
    // Theorem 3 with the experimental τ = µ(k+z): the guarantee needs the
    // coreset's proxy radius ≤ ε̂·r*; with generous µ on 1-D data the
    // (3+ε)-style bound holds comfortably. Assert the conservative
    // envelope 8·OPT that invariants (c)+(e) always give.
    let mut points = instance(14);
    points.push(Point::new(vec![7_777.0]));
    let (k, z) = (2, 1);
    let (_, opt) = optimal_kcenter_outliers(&points, &Euclidean, k, z);
    let alg = CoresetOutliers::new(Euclidean, k, z, 8 * (k + z), 0.25);
    let (out, _) = run_stream(alg, points.iter().cloned());
    let r = radius_with_outliers(&points, &out.centers, z, &Euclidean);
    assert!(r <= 8.0 * opt + 1e-9, "{r} > 8·{opt}");
}

#[test]
fn two_pass_within_theorem_bound() {
    let mut points = instance(14);
    points.push(Point::new(vec![-8_888.0]));
    let (k, z) = (2, 1);
    let (_, opt) = optimal_kcenter_outliers(&points, &Euclidean, k, z);
    let result = two_pass_outliers(&points, &Euclidean, k, z, 1.0).unwrap();
    assert!(
        result.clustering.radius <= 4.0 * opt + 1e-9,
        "{} > (3+ε)·{opt}",
        result.clustering.radius
    );
}

#[test]
fn charikar_within_factor_three() {
    let mut points = instance(13);
    points.push(Point::new(vec![3_333.0]));
    let (k, z) = (2, 1);
    let (_, opt) = optimal_kcenter_outliers(&points, &Euclidean, k, z);
    let result = charikar_kcenter_outliers(&points, &Euclidean, k, z).unwrap();
    assert!(
        result.clustering.radius <= 3.0 * opt + 1e-9,
        "{} > 3·{opt}",
        result.clustering.radius
    );
}

#[test]
fn doubling_within_factor_eight() {
    let points = instance(16);
    let k = 3;
    let (_, opt) = optimal_kcenter(&points, &Euclidean, k);
    let alg = DoublingKCenter::new(Euclidean, k);
    let (out, _) = run_stream(alg, points.iter().cloned());
    let r = radius(&points, &out.centers, &Euclidean);
    assert!(r <= 8.0 * opt + 1e-9, "{r} > 8·{opt}");
}

#[test]
fn coreset_stream_beats_plain_doubling_envelope() {
    // CORESETSTREAM (τ = 8k then GMM) must do at least as well as the raw
    // 8-approximation envelope and usually much better.
    let points = instance(20);
    let k = 3;
    let (_, opt) = optimal_kcenter(&points, &Euclidean, k);
    let alg = CoresetStream::new(Euclidean, k, 8 * k);
    let (out, _) = run_stream(alg, points.iter().cloned());
    let r = radius(&points, &out.centers, &Euclidean);
    assert!(r <= 8.0 * opt + 1e-9);
}
