//! Obs-smoke suite: scrapes the `metrics` verb of a real `kcenter serve`
//! process after driving real traffic through it, and lints the
//! Prometheus text exposition the way a scraper would — every sample
//! belongs to a `# TYPE`-declared family, family names are unique and
//! `kcenter_`-prefixed, and the serve counters/histograms the traffic
//! must have fed are visibly nonzero. The JSON rendering of the same
//! registry is validated against its `kcenter-metrics/v1` schema.
//! Backs the `obs-smoke` CI job together with tests/trace_schema.rs.

use std::collections::HashSet;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use kcenter_obs::json::{parse, Json};
use kcenter_serve::ServeClient;

/// The `kcenter serve` child; killed on drop so a panicking assertion
/// never leaks a server.
struct Server {
    child: Child,
    socket: PathBuf,
}

impl Server {
    fn spawn(dir: &Path) -> Server {
        let socket = dir.join("obs.sock");
        let cache = dir.join("cache");
        let manifest_dir = env!("CARGO_MANIFEST_DIR");
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
        let mut child = Command::new(&cargo)
            .args([
                "run",
                "--release",
                "-p",
                "kcenter-cli",
                "--bin",
                "kcenter",
                "--",
                "serve",
                "--socket",
            ])
            .arg(&socket)
            .args([
                "--tau",
                "16",
                "--listen",
                "tcp://127.0.0.1:0",
                "--cache-dir",
            ])
            .arg(&cache)
            .env_remove("KCENTER_CACHE_DIR")
            .env_remove(kcenter_obs::TRACE_ENV)
            .current_dir(manifest_dir)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn kcenter serve");
        // Wait for the announce line so the socket is live before the
        // first connect attempt.
        let stdout = child.stdout.take().expect("server stdout");
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        let mut announced = false;
        while reader.read_line(&mut line).expect("server announce") > 0 {
            if line.contains("listening on tcp://") {
                announced = true;
                break;
            }
            line.clear();
        }
        assert!(announced, "server never announced its tcp endpoint");
        Server { child, socket }
    }

    /// Connects, waiting out the child's `cargo run` startup.
    fn connect(&mut self) -> ServeClient {
        let deadline = Instant::now() + Duration::from_secs(300);
        loop {
            match ServeClient::connect(&self.socket) {
                Ok(client) => return client,
                Err(err) => {
                    if let Some(status) = self.child.try_wait().expect("poll server") {
                        panic!("server exited before serving: {status}");
                    }
                    assert!(
                        Instant::now() < deadline,
                        "server socket never appeared: {err}"
                    );
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kcenter-obs-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn points(n: usize) -> Vec<kcenter_metric::Point> {
    (0..n)
        .map(|i| {
            let a = ((i as u64).wrapping_mul(2654435761).wrapping_add(17)) % 1000;
            let b = ((i as u64).wrapping_mul(40503).wrapping_add(91)) % 1000;
            kcenter_metric::Point::new(vec![a as f64 * 0.5, b as f64 * 0.25])
        })
        .collect()
}

/// The family name of one exposition sample line: the metric name up to
/// the label set, with histogram sample suffixes stripped.
fn sample_family(line: &str) -> &str {
    let name = line
        .split(['{', ' '])
        .next()
        .expect("split yields at least one piece");
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            return stem;
        }
    }
    name
}

/// The scrape-side pin: Prometheus exposition lints clean, the traffic
/// the test pushed shows up in the serve families, and the JSON
/// rendering of the same registry carries its schema tag.
#[test]
fn serve_metrics_verb_scrapes_clean() {
    let dir = temp_dir();
    let mut server = Server::spawn(&dir);
    let mut client = server.connect();
    client.hello(Some(16)).expect("hello");

    // Real traffic: two ingest batches and a query on one stream, plus a
    // second session so the resident-sessions gauge has something to say.
    let batch = points(40);
    client.ingest("acme", "s1", &batch[..20]).expect("ingest 1");
    client.ingest("acme", "s1", &batch[20..]).expect("ingest 2");
    client.query("acme", "s1", 3, 0, 0.25).expect("query");
    client
        .ingest("acme", "s2", &batch[..10])
        .expect("ingest s2");

    let text = client.metrics(None).expect("prometheus scrape");
    let mut typed: HashSet<&str> = HashSet::new();
    let mut histograms: HashSet<&str> = HashSet::new();
    for line in text.lines() {
        let Some(decl) = line.strip_prefix("# TYPE ") else {
            assert!(
                !line.starts_with('#') || line.starts_with("# HELP "),
                "unknown comment line {line:?}"
            );
            continue;
        };
        let mut words = decl.split(' ');
        let family = words.next().expect("family name in TYPE line");
        let kind = words
            .next()
            .unwrap_or_else(|| panic!("no kind in {line:?}"));
        assert!(
            ["counter", "gauge", "histogram"].contains(&kind),
            "unknown kind in {line:?}"
        );
        assert!(
            family.starts_with("kcenter_"),
            "family {family:?} misses the kcenter_ prefix"
        );
        assert!(typed.insert(family), "family {family:?} declared twice");
        if kind == "histogram" {
            histograms.insert(family);
        }
    }
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let family = sample_family(line);
        // A bare name ending in _count/_sum could also be a counter
        // family; accept either resolution, but one must be declared.
        assert!(
            typed.contains(family) || typed.contains(line.split(['{', ' ']).next().unwrap()),
            "sample {line:?} has no # TYPE declaration"
        );
        if histograms.contains(family) && line.contains("_bucket") {
            assert!(
                line.contains("le="),
                "histogram bucket sample {line:?} misses its le label"
            );
        }
    }

    // The traffic is visible: ingest fed the batch counter, the points
    // counter, and the latency histogram; the query ran; the gauges were
    // refreshed at scrape time.
    let sample = |name: &str| -> u64 {
        text.lines()
            .find(|l| sample_family(l) == name || l.starts_with(&format!("{name} ")))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse::<f64>().ok())
            .map(|v| v as u64)
            .unwrap_or_else(|| panic!("no sample for {name} in:\n{text}"))
    };
    assert_eq!(sample("kcenter_serve_ingest_batches"), 3);
    assert_eq!(sample("kcenter_serve_ingest_points"), 50);
    assert_eq!(sample("kcenter_serve_queries"), 1);
    assert!(
        text.lines()
            .any(|l| l.starts_with("kcenter_serve_ingest_micros_count ") && !l.ends_with(" 0")),
        "ingest latency histogram never observed:\n{text}"
    );
    assert_eq!(sample("kcenter_serve_sessions_known"), 2);

    // The JSON rendering is the same registry under its schema tag.
    let json = client.metrics(Some("json")).expect("json scrape");
    let snapshot = parse(&json).unwrap_or_else(|e| panic!("metrics json does not parse: {e}"));
    assert_eq!(
        snapshot.get("schema").and_then(Json::as_str),
        Some("kcenter-metrics/v1")
    );
    let entries = snapshot
        .get("metrics")
        .and_then(Json::as_array)
        .expect("metrics array");
    let queries = entries
        .iter()
        .find(|m| m.get("name").and_then(Json::as_str) == Some("serve.queries"))
        .expect("serve.queries in json snapshot");
    assert_eq!(queries.get("value").and_then(Json::as_u64), Some(1));

    // Unknown formats are a protocol error, not silent text.
    let err = client
        .metrics(Some("xml"))
        .expect_err("xml must be rejected");
    assert!(
        err.to_string().contains("unknown metrics format"),
        "unexpected error {err}"
    );

    client.shutdown().expect("shutdown");
    let status = server.child.wait().expect("reap server");
    assert!(status.success(), "server exited with {status}");
    let _ = std::fs::remove_dir_all(&dir);
}
