//! Serve-soak suite: eight concurrent sessions driven through the real
//! `kcenter serve` binary — seven over its unix socket, one over its TCP
//! listener (both endpoints front the same registry) — under a memory budget
//! small enough that the sessions cannot all stay resident — every
//! ingest round forces LRU evict/restore churn, and each worker throws
//! in explicit mid-stream evictions on top.
//!
//! Two invariants are pinned:
//!
//! * **Zero session loss** — after the churn the registry still knows
//!   all eight sessions, each with its full processed count.
//! * **Evict+restore determinism** — every answer a worker received
//!   mid-churn (including those computed right after a restore) is
//!   bit-identical to what an in-process reference registry with *no*
//!   budget — a registry that never evicts — answers for the same
//!   stream position. Radii cross the socket through Rust's
//!   shortest-round-trip float formatting, so string equality here is
//!   bit equality.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use kcenter_serve::server::reply_field;
use kcenter_serve::{RegistryConfig, ServeClient, SessionRegistry};

const SESSIONS: usize = 8;
const ROUNDS: usize = 3;
const BATCH: usize = 40;
const TAU: usize = 16;
/// Resident-point budget: with τ = 16 a session holds at most 17 coreset
/// points, so 40 fits only two sessions — eight concurrent streams must
/// churn through the store constantly.
const BUDGET: usize = 40;

/// The same deterministic per-session generator the serve crate's own
/// tests use: session `seed` always streams the same points.
fn session_points(seed: u64, n: usize) -> Vec<kcenter_metric::Point> {
    (0..n)
        .map(|i| {
            let a = ((i as u64).wrapping_mul(2654435761).wrapping_add(seed * 97)) % 1000;
            let b = ((i as u64).wrapping_mul(40503).wrapping_add(seed * 131)) % 1000;
            kcenter_metric::Point::new(vec![a as f64 * 0.5, b as f64 * 0.25])
        })
        .collect()
}

/// The `kcenter serve` child process; killed on drop so a panicking
/// assertion never leaks a server.
struct Server {
    child: Child,
    socket: PathBuf,
    /// Resolved `tcp://HOST:PORT` of the server's TCP listener, parsed
    /// from its announce line (the server binds port 0).
    tcp_addr: String,
}

impl Server {
    fn spawn(dir: &Path) -> Server {
        let socket = dir.join("soak.sock");
        let cache = dir.join("cache");
        let manifest_dir = env!("CARGO_MANIFEST_DIR");
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
        let mut child = Command::new(&cargo)
            .args([
                "run",
                "--release",
                "-p",
                "kcenter-cli",
                "--bin",
                "kcenter",
                "--",
                "serve",
                "--socket",
            ])
            .arg(&socket)
            .args([
                "--tau",
                &TAU.to_string(),
                "--memory-budget",
                &BUDGET.to_string(),
            ])
            .args(["--listen", "tcp://127.0.0.1:0"])
            .args(["--snapshot-every", "64", "--cache-dir"])
            .arg(&cache)
            // The server must use the test's own cache dir, never an
            // ambient one.
            .env_remove("KCENTER_CACHE_DIR")
            .current_dir(manifest_dir)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn kcenter serve");
        // The server announces each bound endpoint on stdout; the TCP
        // line carries the ephemeral port.
        let stdout = child.stdout.take().expect("server stdout");
        let mut reader = BufReader::new(stdout);
        let mut tcp_addr = String::new();
        let mut line = String::new();
        while reader.read_line(&mut line).expect("server announce") > 0 {
            if let Some(addr) = line
                .trim()
                .strip_prefix("kcenter-serve: listening on tcp://")
            {
                tcp_addr = format!("tcp://{addr}");
                break;
            }
            line.clear();
        }
        assert!(
            !tcp_addr.is_empty(),
            "server never announced a tcp endpoint"
        );
        Server {
            child,
            socket,
            tcp_addr,
        }
    }

    /// Connects, waiting out the child's `cargo run` startup.
    fn connect(&mut self) -> ServeClient {
        let deadline = Instant::now() + Duration::from_secs(300);
        loop {
            match ServeClient::connect(&self.socket) {
                Ok(client) => return client,
                Err(err) => {
                    if let Some(status) = self.child.try_wait().expect("poll server") {
                        panic!("server exited before serving: {status}");
                    }
                    assert!(
                        Instant::now() < deadline,
                        "server socket never appeared: {err}"
                    );
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn concurrent_sessions_survive_eviction_churn_bitwise() {
    let dir = std::env::temp_dir()
        .join("kcenter-serve-soak")
        .join(format!("run-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut server = Server::spawn(&dir);
    // Wait until the server actually listens before unleashing workers.
    drop(server.connect());

    // Eight concurrent workers, one session each, interleaved
    // ingest/query/evict. Each records the radius string of every
    // mid-stream query.
    let socket = server.socket.clone();
    let tcp_addr = server.tcp_addr.clone();
    let workers: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let socket = socket.clone();
            let tcp_addr = tcp_addr.clone();
            std::thread::spawn(move || {
                // One session rides the TCP listener, the rest the unix
                // socket — both endpoints front the same registry, so the
                // determinism check below covers the mixed-transport case.
                let mut client = if i == 0 {
                    let mut client =
                        ServeClient::connect_tcp(&tcp_addr).expect("worker connect (tcp)");
                    let hello = client.hello(Some(TAU as u64)).expect("hello over tcp");
                    assert!(
                        hello.iter().any(|p| p == &format!("tau={TAU}")),
                        "hello must echo the registry tau: {hello:?}"
                    );
                    client
                } else {
                    ServeClient::connect(&socket).expect("worker connect")
                };
                let tenant = format!("tenant-{}", i % 3);
                let stream = format!("stream-{i}");
                let points = session_points(i as u64 + 1, ROUNDS * BATCH);
                let mut radii = Vec::with_capacity(ROUNDS);
                for round in 0..ROUNDS {
                    let batch = &points[round * BATCH..(round + 1) * BATCH];
                    let reply = client.ingest(&tenant, &stream, batch).expect("ingest");
                    let processed: u64 = reply_field(&reply, "processed")
                        .expect("processed field")
                        .parse()
                        .expect("processed count");
                    assert_eq!(processed, ((round + 1) * BATCH) as u64, "{tenant}/{stream}");
                    let answer = client.query(&tenant, &stream, 3, 5, 0.25).expect("query");
                    radii.push(reply_field(&answer, "radius").expect("radius").to_string());
                    if round + 1 < ROUNDS {
                        // Explicit mid-stream eviction on top of the LRU
                        // churn the budget already forces.
                        client.evict(&tenant, &stream).expect("evict");
                    }
                }
                radii
            })
        })
        .collect();
    let observed: Vec<Vec<String>> = workers
        .into_iter()
        .map(|w| w.join().expect("worker thread"))
        .collect();

    // Reference: an in-process registry with no budget — nothing ever
    // evicts, so it answers exactly what an uninterrupted stream would.
    let reference = SessionRegistry::new(
        kcenter_metric::Euclidean,
        RegistryConfig {
            tau: TAU,
            memory_budget_points: None,
            snapshot_every: 0,
            ingest_buffer: 32,
        },
        None,
    )
    .unwrap();
    for (i, radii) in observed.iter().enumerate() {
        let tenant = format!("tenant-{}", i % 3);
        let stream = format!("stream-{i}");
        let points = session_points(i as u64 + 1, ROUNDS * BATCH);
        for round in 0..ROUNDS {
            let batch = points[round * BATCH..(round + 1) * BATCH].to_vec();
            reference.ingest(&tenant, &stream, batch).unwrap();
            let answer = reference.query(&tenant, &stream, 3, 5, 0.25).unwrap();
            assert_eq!(
                radii[round],
                format!("{}", answer.radius),
                "session {tenant}/{stream} round {round}: evict/restore must be transparent"
            );
        }
    }

    // Zero session loss, and the budget really did force churn.
    let mut client = server.connect();
    let stats = client.request(&["stats".to_string()]).expect("stats");
    let field = |key: &str| -> u64 {
        reply_field(&stats, key)
            .unwrap_or_else(|| panic!("missing {key} in {stats:?}"))
            .parse()
            .expect("stats field")
    };
    assert_eq!(field("sessions"), SESSIONS as u64, "zero session loss");
    assert!(field("evictions") > 0, "the budget must force evictions");
    assert!(field("restores") > 0, "workers must have hit restores");
    assert!(
        field("resident_points") <= BUDGET as u64,
        "the budget holds after the churn"
    );
    for i in 0..SESSIONS {
        let stat = client
            .request(&[
                "stat".to_string(),
                format!("tenant-{}", i % 3),
                format!("stream-{i}"),
            ])
            .expect("stat");
        assert_eq!(
            reply_field(&stat, "processed"),
            Some((ROUNDS * BATCH).to_string().as_str()),
            "session {i} kept its full stream"
        );
    }

    client.shutdown().expect("shutdown");
    let status = server.child.wait().expect("server exit");
    assert!(status.success(), "server exited with {status}");
    assert!(!server.socket.exists(), "socket removed on shutdown");
}
