//! End-to-end pipelines across crates: generated data → partitioning →
//! coresets → final clustering, with the paper's qualitative claims checked
//! on every path.

use kcenter::baselines::malkomes::{malkomes_mr_kcenter, malkomes_mr_outliers};
use kcenter::core::gmm::gmm_select;
use kcenter::core::solution::outlier_indices;
use kcenter::data::{higgs_like, inject_outliers, power_like, shuffled};
use kcenter::prelude::*;

#[test]
fn mr_kcenter_tracks_sequential_gmm() {
    let points = shuffled(&higgs_like(8_000, 1), 2);
    let k = 15;
    let gmm = gmm_select(&points, &Euclidean, k, 0);
    for mu in [1usize, 2, 4] {
        let result = mr_kcenter(
            &points,
            &Euclidean,
            &MrKCenterConfig {
                k,
                ell: 4,
                coreset: CoresetSpec::Multiplier { mu },
                seed: 3,
            },
        )
        .unwrap();
        // (2+ε)-approx vs GMM's 2-approx: the MR radius may exceed GMM's
        // but stays within a modest factor; for µ = 4 it should be close.
        assert!(
            result.clustering.radius <= 2.0 * gmm.radius,
            "µ={mu}: MR radius {} vs GMM {}",
            result.clustering.radius,
            gmm.radius
        );
    }
}

#[test]
fn bigger_coresets_shrink_the_radius_on_average() {
    // The Fig. 2 trend: mean ratio over seeds improves (or stays equal)
    // from µ=1 to µ=8.
    let k = 10;
    let mut mean = [0.0f64; 2];
    let reps = 5;
    for seed in 0..reps {
        let points = shuffled(&power_like(6_000, seed as u64), seed as u64 + 100);
        for (slot, mu) in [(0usize, 1usize), (1, 8)] {
            let result = mr_kcenter(
                &points,
                &Euclidean,
                &MrKCenterConfig {
                    k,
                    ell: 4,
                    coreset: CoresetSpec::Multiplier { mu },
                    seed: seed as u64,
                },
            )
            .unwrap();
            mean[slot] += result.clustering.radius / reps as f64;
        }
    }
    assert!(
        mean[1] <= mean[0] * 1.02,
        "mean radius µ=8 ({}) should not exceed µ=1 ({})",
        mean[1],
        mean[0]
    );
}

#[test]
fn mr_outliers_recovers_injected_outliers() {
    let mut points = power_like(6_000, 5);
    let z = 30;
    let report = inject_outliers(&mut points, z, 6);
    let truth: Vec<usize> = report.outlier_indices;

    let config = MrOutliersConfig::deterministic(12, z, 4, CoresetSpec::Multiplier { mu: 4 });
    let result = mr_kcenter_outliers(&points, &Euclidean, &config).unwrap();

    // Radius must be at data scale, not outlier scale.
    assert!(
        result.clustering.radius < 2.0 * report.meb_radius,
        "radius {} vs MEB radius {}",
        result.clustering.radius,
        report.meb_radius
    );
    // Flagged points ∪ absorbed centers ⊇ injected outliers.
    let flagged = outlier_indices(&points, &result.clustering.centers, z, &Euclidean);
    let absorbed: Vec<usize> = truth
        .iter()
        .copied()
        .filter(|&i| result.clustering.centers.iter().any(|c| *c == points[i]))
        .collect();
    for i in &truth {
        assert!(
            flagged.contains(i) || absorbed.contains(i),
            "outlier {i} neither flagged nor absorbed"
        );
    }
}

#[test]
fn randomized_mr_beats_deterministic_under_adversarial_partitioning() {
    // Fig. 4's headline at µ = 1: all outliers in one partition break the
    // deterministic µ=1 coreset, while random partitioning dilutes them.
    let mut points = higgs_like(4_000, 7);
    let z = 64;
    let report = inject_outliers(&mut points, z, 8);
    let ell = 16;

    let mut det = MrOutliersConfig::deterministic(8, z, ell, CoresetSpec::Multiplier { mu: 1 });
    det.partitioning = MrPartitioning::Adversarial {
        special: report.outlier_indices.clone(),
    };
    let mut rand = MrOutliersConfig::randomized(8, z, ell, CoresetSpec::Multiplier { mu: 1 });
    rand.partitioning = MrPartitioning::Random;
    rand.seed = 9;

    let det_result = mr_kcenter_outliers(&points, &Euclidean, &det).unwrap();
    let rand_result = mr_kcenter_outliers(&points, &Euclidean, &rand).unwrap();

    // Randomized uses a much smaller union (k + 6z/ℓ vs k + z per part).
    assert!(rand_result.union_size < det_result.union_size);
    // And must still solve the instance.
    assert!(
        rand_result.clustering.radius < 2.0 * report.meb_radius,
        "randomized radius {}",
        rand_result.clustering.radius
    );
}

#[test]
fn sequential_equals_mapreduce_with_one_partition() {
    let mut points = power_like(2_000, 11);
    inject_outliers(&mut points, 10, 12);
    let points = shuffled(&points, 13);

    let seq = sequential_kcenter_outliers(
        &points,
        &Euclidean,
        &SequentialOutliersConfig::new(6, 10, 2),
    )
    .unwrap();
    let mut mr_cfg = MrOutliersConfig::deterministic(6, 10, 1, CoresetSpec::Multiplier { mu: 2 });
    mr_cfg.seed = 0;
    let mr = mr_kcenter_outliers(&points, &Euclidean, &mr_cfg).unwrap();

    // ℓ = 1 MapReduce is definitionally the sequential algorithm. The two
    // entry points derive the GMM start point differently from the seed, so
    // coresets differ by start-point arbitrariness; structure and quality
    // must match.
    assert_eq!(seq.coreset_size, mr.union_size);
    assert!(
        (seq.r_min - mr.r_min).abs() <= 0.10 * seq.r_min,
        "r_min diverged: {} vs {}",
        seq.r_min,
        mr.r_min
    );
    assert!(
        (seq.clustering.radius - mr.clustering.radius).abs() <= 0.15 * seq.clustering.radius,
        "radius diverged: {} vs {}",
        seq.clustering.radius,
        mr.clustering.radius
    );
}

#[test]
fn malkomes_baselines_are_the_mu1_points() {
    let points = shuffled(&higgs_like(3_000, 17), 18);
    let ours = mr_kcenter(
        &points,
        &Euclidean,
        &MrKCenterConfig {
            k: 8,
            ell: 4,
            coreset: CoresetSpec::Multiplier { mu: 1 },
            seed: 5,
        },
    )
    .unwrap();
    let baseline = malkomes_mr_kcenter(&points, &Euclidean, 8, 4, 5).unwrap();
    assert_eq!(ours.clustering.radius, baseline.clustering.radius);

    let mut with_outliers = points.clone();
    inject_outliers(&mut with_outliers, 12, 19);
    let baseline = malkomes_mr_outliers(&with_outliers, &Euclidean, 8, 12, 4, 5).unwrap();
    assert!(baseline.union_size <= 4 * (8 + 12));
}

#[test]
fn streaming_and_mapreduce_agree_on_easy_instances() {
    let mut points = power_like(5_000, 23);
    let z = 20;
    let report = inject_outliers(&mut points, z, 24);
    let points = shuffled(&points, 25);
    let k = 10;

    let mr = mr_kcenter_outliers(
        &points,
        &Euclidean,
        &MrOutliersConfig::deterministic(k, z, 4, CoresetSpec::Multiplier { mu: 4 }),
    )
    .unwrap();

    let alg = CoresetOutliers::new(Euclidean, k, z, 8 * (k + z), 0.25);
    let (stream_out, _) = run_stream(alg, points.iter().cloned());
    let stream_radius = radius_with_outliers(&points, &stream_out.centers, z, &Euclidean);

    // Both must exclude the planted outliers (data scale ≪ outlier scale).
    assert!(mr.clustering.radius < 2.0 * report.meb_radius);
    assert!(stream_radius < 2.0 * report.meb_radius);
}

#[test]
fn two_pass_matches_one_pass_quality_without_knowing_tau() {
    let mut points = power_like(3_000, 31);
    let z = 15;
    let report = inject_outliers(&mut points, z, 32);
    let points = shuffled(&points, 33);
    let k = 8;

    let two = two_pass_outliers(&points, &Euclidean, k, z, 1.0).unwrap();
    assert_eq!(two.passes.pass_count(), 2);
    assert!(
        two.clustering.radius < 2.0 * report.meb_radius,
        "2-pass radius {}",
        two.clustering.radius
    );
}

#[test]
fn deterministic_reproducibility_across_runs() {
    let mut points = higgs_like(2_000, 41);
    inject_outliers(&mut points, 10, 42);
    let config = MrOutliersConfig::deterministic(5, 10, 4, CoresetSpec::Multiplier { mu: 2 });
    let a = mr_kcenter_outliers(&points, &Euclidean, &config).unwrap();
    let b = mr_kcenter_outliers(&points, &Euclidean, &config).unwrap();
    assert_eq!(a.clustering.radius, b.clustering.radius);
    assert_eq!(a.r_min, b.r_min);
    assert_eq!(a.union_size, b.union_size);
}
