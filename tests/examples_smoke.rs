//! Smoke test: every example in `examples/` must build and run to
//! completion. Examples are documentation that compiles; this test keeps
//! them from silently rotting as the workspace evolves.
//!
//! Each example is executed through `cargo run --release --example` (release
//! because the examples cluster thousands of points; the recursive cargo
//! invocation serializes on cargo's own target-dir lock, so the examples run
//! one after another inside a single test).

use std::path::Path;
use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "outlier_detection",
    "streaming_pipeline",
    "compare_sequential",
];

#[test]
fn all_examples_run_to_completion() {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    for example in EXAMPLES {
        let source = Path::new(manifest_dir)
            .join("examples")
            .join(format!("{example}.rs"));
        assert!(
            source.exists(),
            "example source {} disappeared; update EXAMPLES in {}",
            source.display(),
            file!()
        );
        let output = Command::new(&cargo)
            .args(["run", "--release", "--example", example])
            .current_dir(manifest_dir)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example {example} exited with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}
