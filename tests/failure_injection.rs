//! Failure injection: degenerate and hostile inputs across the public API.

use kcenter::core::InputError;
use kcenter::prelude::*;

fn dupes(n: usize) -> Vec<Point> {
    vec![Point::new(vec![3.0, 3.0]); n]
}

#[test]
fn empty_input_is_rejected_everywhere() {
    let empty: Vec<Point> = Vec::new();
    assert!(matches!(
        mr_kcenter(
            &empty,
            &Euclidean,
            &MrKCenterConfig {
                k: 1,
                ell: 1,
                coreset: CoresetSpec::Multiplier { mu: 1 },
                seed: 0
            }
        ),
        Err(InputError::EmptyInput)
    ));
    assert!(matches!(
        mr_kcenter_outliers(
            &empty,
            &Euclidean,
            &MrOutliersConfig::deterministic(1, 0, 1, CoresetSpec::Multiplier { mu: 1 })
        ),
        Err(InputError::EmptyInput)
    ));
    assert!(matches!(
        sequential_kcenter_outliers(&empty, &Euclidean, &SequentialOutliersConfig::new(1, 0, 1)),
        Err(InputError::EmptyInput)
    ));
    assert!(two_pass_outliers(&empty, &Euclidean, 1, 0, 0.5).is_err());
}

#[test]
fn k_at_least_n_is_rejected() {
    let points = dupes(5);
    assert!(matches!(
        mr_kcenter(
            &points,
            &Euclidean,
            &MrKCenterConfig {
                k: 5,
                ell: 2,
                coreset: CoresetSpec::Multiplier { mu: 1 },
                seed: 0
            }
        ),
        Err(InputError::InvalidK { k: 5, n: 5 })
    ));
}

#[test]
fn all_duplicate_points_cluster_to_radius_zero() {
    let points = dupes(64);
    let result = mr_kcenter(
        &points,
        &Euclidean,
        &MrKCenterConfig {
            k: 3,
            ell: 4,
            coreset: CoresetSpec::Multiplier { mu: 2 },
            seed: 0,
        },
    )
    .unwrap();
    assert_eq!(result.clustering.radius, 0.0);
    // Coresets saturate at one distinct point per partition.
    assert!(result.union_size <= 4);
}

#[test]
fn duplicates_with_outliers_are_solved_exactly() {
    let mut points = dupes(40);
    points.push(Point::new(vec![1_000.0, 0.0]));
    points.push(Point::new(vec![0.0, 1_000.0]));
    let config = MrOutliersConfig::deterministic(1, 2, 2, CoresetSpec::Multiplier { mu: 2 });
    let result = mr_kcenter_outliers(&points, &Euclidean, &config).unwrap();
    assert_eq!(result.clustering.radius, 0.0);
}

#[test]
fn single_point_partitions_work() {
    // ℓ much larger than sensible: partitions of one point each.
    let points: Vec<Point> = (0..8).map(|i| Point::new(vec![i as f64])).collect();
    let result = mr_kcenter(
        &points,
        &Euclidean,
        &MrKCenterConfig {
            k: 2,
            ell: 8,
            coreset: CoresetSpec::Multiplier { mu: 4 },
            seed: 0,
        },
    )
    .unwrap();
    assert_eq!(result.clustering.k(), 2);
    // Every point survives into the union (coresets saturate at size 1).
    assert_eq!(result.union_size, 8);
}

#[test]
fn z_larger_than_realistic_is_rejected_but_large_z_works() {
    let points: Vec<Point> = (0..30).map(|i| Point::new(vec![i as f64])).collect();
    // k + z = n → rejected.
    assert!(mr_kcenter_outliers(
        &points,
        &Euclidean,
        &MrOutliersConfig::deterministic(2, 28, 2, CoresetSpec::Multiplier { mu: 1 })
    )
    .is_err());
    // k + z = n - 1 → accepted; everything but one cluster is outlier.
    let result = mr_kcenter_outliers(
        &points,
        &Euclidean,
        &MrOutliersConfig::deterministic(2, 27, 2, CoresetSpec::Multiplier { mu: 1 }),
    )
    .unwrap();
    assert!(result.clustering.radius <= 29.0);
}

#[test]
fn streaming_handles_singleton_and_empty_streams() {
    let alg = CoresetOutliers::<Point, _>::new(Euclidean, 1, 1, 4, 0.5);
    let (out, report) = run_stream(alg, vec![Point::new(vec![1.0])]);
    assert_eq!(out.coreset_size, 1);
    assert_eq!(report.items, 1);

    let alg = CoresetStream::<Point, _>::new(Euclidean, 2, 2);
    let (out, _) = run_stream(alg, Vec::<Point>::new());
    assert!(out.centers.is_empty());
}

#[test]
fn nan_points_are_rejected_at_the_boundary() {
    // The type system makes NaN unrepresentable inside the algorithms: the
    // only way in is Point construction, which validates.
    assert!(Point::try_new(vec![f64::NAN]).is_err());
    assert!(Point::try_new(vec![f64::INFINITY, 0.0]).is_err());
    assert!(Point::try_new(vec![]).is_err());
}

#[test]
fn adversarial_partitioning_with_all_points_special_is_legal() {
    // Degenerate adversary: every index "special" → partition 0 gets all.
    let points: Vec<Point> = (0..20).map(|i| Point::new(vec![i as f64])).collect();
    let mut config = MrOutliersConfig::deterministic(2, 2, 4, CoresetSpec::Multiplier { mu: 1 });
    config.partitioning = MrPartitioning::Adversarial {
        special: (0..20).collect(),
    };
    let result = mr_kcenter_outliers(&points, &Euclidean, &config).unwrap();
    assert_eq!(result.coreset_sizes.len(), 1);
    assert!(result.clustering.radius <= 19.0);
}

#[test]
fn coreset_spec_validation_end_to_end() {
    let points: Vec<Point> = (0..40).map(|i| Point::new(vec![i as f64])).collect();
    // Fixed τ below k is rejected up front.
    let bad = MrKCenterConfig {
        k: 6,
        ell: 2,
        coreset: CoresetSpec::Fixed { tau: 3 },
        seed: 0,
    };
    assert!(matches!(
        mr_kcenter(&points, &Euclidean, &bad),
        Err(InputError::CoresetTooSmall { tau: 3, minimum: 6 })
    ));
    // EpsStop with invalid ε rejected.
    let bad_eps = MrKCenterConfig {
        k: 4,
        ell: 2,
        coreset: CoresetSpec::EpsStop { eps: 2.0 },
        seed: 0,
    };
    assert!(matches!(
        mr_kcenter(&points, &Euclidean, &bad_eps),
        Err(InputError::InvalidEpsilon { .. })
    ));
}
