//! The paper's memory bounds, checked against the engine's accounting.

use kcenter::data::{higgs_like, inject_outliers};
use kcenter::prelude::*;

#[test]
fn round1_local_memory_is_one_partition() {
    let n = 4_096;
    let points = higgs_like(n, 1);
    for ell in [2usize, 4, 8] {
        let result = mr_kcenter(
            &points,
            &Euclidean,
            &MrKCenterConfig {
                k: 8,
                ell,
                coreset: CoresetSpec::Multiplier { mu: 2 },
                seed: 0,
            },
        )
        .unwrap();
        let round1 = result.memory.rounds[0];
        assert_eq!(round1.reducers, ell);
        // Chunked partitions differ by at most one point.
        assert!(round1.max_reducer_load <= n / ell + 1);
        assert_eq!(round1.total_pairs, n);
    }
}

#[test]
fn round2_local_memory_is_the_coreset_union() {
    let n = 4_096;
    let points = higgs_like(n, 2);
    let (k, ell, mu) = (8usize, 4usize, 2usize);
    let result = mr_kcenter(
        &points,
        &Euclidean,
        &MrKCenterConfig {
            k,
            ell,
            coreset: CoresetSpec::Multiplier { mu },
            seed: 0,
        },
    )
    .unwrap();
    let round2 = result.memory.rounds[1];
    assert_eq!(round2.reducers, 1);
    assert_eq!(round2.max_reducer_load, ell * mu * k);
    assert_eq!(result.union_size, ell * mu * k);
}

#[test]
fn theorem1_memory_tradeoff_sqrt_choice() {
    // With ℓ = √(n/k), ML = max(n/ℓ, ℓ·µ·k) ≈ √(n·k)·µ — the Corollary 1
    // choice. Verify the accounting reflects it.
    let n = 6_400;
    let k = 4;
    let ell = kcenter::core::tuning::ell_for_kcenter(n, k); // 40
    let points = higgs_like(n, 3);
    let result = mr_kcenter(
        &points,
        &Euclidean,
        &MrKCenterConfig {
            k,
            ell,
            coreset: CoresetSpec::Multiplier { mu: 1 },
            seed: 0,
        },
    )
    .unwrap();
    let ml = result.memory.local_memory();
    let sqrt_nk = ((n * k) as f64).sqrt();
    assert!(
        (ml as f64) <= 2.0 * sqrt_nk,
        "ML = {ml} far above √(nk) = {sqrt_nk}"
    );
    assert!(result.memory.aggregate_memory() <= n);
}

#[test]
fn randomized_outliers_memory_shrinks_with_ell() {
    // Corollary 3: the z term is divided across partitions.
    let mut points = higgs_like(4_000, 4);
    let z = 128;
    inject_outliers(&mut points, z, 5);
    let k = 4;

    let union_for = |ell: usize| {
        let config = MrOutliersConfig::randomized(k, z, ell, CoresetSpec::Multiplier { mu: 1 });
        mr_kcenter_outliers(&points, &Euclidean, &config)
            .unwrap()
            .union_size
    };
    // Per-partition coreset ≈ k + 6z/ℓ, so the union is ℓ·k + 6z — the z
    // term stops growing with ℓ while the deterministic union grows as
    // ℓ·(k+z).
    let u8 = union_for(8);
    let u16 = union_for(16);
    let det16 = {
        let config = MrOutliersConfig::deterministic(k, z, 16, CoresetSpec::Multiplier { mu: 1 });
        mr_kcenter_outliers(&points, &Euclidean, &config)
            .unwrap()
            .union_size
    };
    assert!(
        u16 < det16,
        "randomized union {u16} not below deterministic {det16}"
    );
    assert!(u16 <= u8 + 16 * k, "z-term grew with ℓ: {u8} -> {u16}");
}

#[test]
fn streaming_memory_independent_of_stream_length() {
    // Corollary 4: working memory O(k+z), independent of |S|.
    let (k, z) = (6usize, 10usize);
    let tau = 4 * (k + z);
    let mut peaks = Vec::new();
    for &n in &[1_000usize, 4_000, 16_000] {
        let mut points = higgs_like(n, 6);
        inject_outliers(&mut points, z, 7);
        let alg = CoresetOutliers::new(Euclidean, k, z, tau, 0.25);
        let (_, report) = run_stream(alg, points);
        peaks.push(report.peak_memory_items);
    }
    assert!(peaks.iter().all(|&p| p <= tau + 1), "peaks {peaks:?}");
}
