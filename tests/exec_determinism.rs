//! Cross-check: the multi-process executor (`kcenter cluster --procs N`)
//! must be **bit-identical** to the in-process MapReduce engine on the
//! same seeded dataset — the acceptance contract of the executor and the
//! suite behind the `exec-determinism` CI job.
//!
//! Each case runs the real `kcenter` binary twice — once in-process at
//! parallelism ℓ, once with `--procs` = ℓ real worker OS processes — and
//! compares (a) the written centers CSV **byte for byte** (the CSV writer
//! uses Rust's shortest round-trip `f64` formatting, so equal bytes ⇔
//! equal coordinate bits) and (b) the reported radius line, which the CLI
//! renders at 6 decimals — a sanity check on top of (a), not the
//! bit-level contract. Bit-exact *radius* equality is pinned at the
//! library layer by `crates/exec/tests/process_exec.rs`
//! (`to_bits()` comparisons against the in-process engines). Procs 1 and
//! 4 are both covered, for both MapReduce algorithms.

use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use kcenter_exec::protocol::{read_frame, write_frame};

fn run_kcenter(args: &[&str]) -> String {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(&cargo)
        .args([
            "run",
            "--release",
            "-p",
            "kcenter-cli",
            "--bin",
            "kcenter",
            "--",
        ])
        .args(args)
        // Determinism pins assume the persistent cache is off; an ambient
        // KCENTER_CACHE_DIR must not serve one run the other's solution,
        // and an ambient KCENTER_TRACE must not have runs clobbering one
        // trace file (tests/trace_schema.rs covers tracing explicitly).
        .env_remove("KCENTER_CACHE_DIR")
        .env_remove("KCENTER_TRACE")
        .current_dir(manifest_dir)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn kcenter {args:?}: {e}"));
    assert!(
        output.status.success(),
        "kcenter {args:?} exited with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("kcenter-exec-determinism");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

fn radius_line(stdout: &str) -> String {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("radius = "))
        .unwrap_or_else(|| panic!("no radius line in:\n{stdout}"));
    // The line ends with a wall-clock field; everything before it is a
    // pure function of the input and must match exactly.
    line.split(", time =")
        .next()
        .expect("split yields at least one piece")
        .to_string()
}

/// One cross-check: in-process at `--ell procs` vs multi-process at
/// `--procs procs`, radius string and centers bytes must match exactly.
fn cross_check(data: &str, algo: &str, k: &str, z: &str, procs: usize) {
    let procs_str = procs.to_string();
    let in_centers = temp_path(&format!("centers-in-{algo}-{procs}.csv"));
    let mp_centers = temp_path(&format!("centers-mp-{algo}-{procs}.csv"));
    let in_centers_str = in_centers.to_string_lossy().into_owned();
    let mp_centers_str = mp_centers.to_string_lossy().into_owned();

    let common = |centers: &str| {
        vec![
            "cluster".to_string(),
            "--input".into(),
            data.to_string(),
            "--k".into(),
            k.to_string(),
            "--z".into(),
            z.to_string(),
            "--algo".into(),
            algo.to_string(),
            "--mu".into(),
            "2".into(),
            "--seed".into(),
            "7".into(),
            "--cache-dir".into(),
            String::new(),
            "--output".into(),
            centers.to_string(),
        ]
    };

    let mut in_args = common(&in_centers_str);
    in_args.extend(["--ell".to_string(), procs_str.clone()]);
    let in_out = run_kcenter(&in_args.iter().map(String::as_str).collect::<Vec<_>>());

    let mut mp_args = common(&mp_centers_str);
    mp_args.extend(["--procs".to_string(), procs_str.clone()]);
    let mp_out = run_kcenter(&mp_args.iter().map(String::as_str).collect::<Vec<_>>());

    assert_eq!(
        radius_line(&in_out),
        radius_line(&mp_out),
        "{algo} at {procs} procs: radius drifted across the process boundary"
    );
    let in_bytes = std::fs::read(&in_centers).unwrap();
    let mp_bytes = std::fs::read(&mp_centers).unwrap();
    assert!(!in_bytes.is_empty());
    assert_eq!(
        in_bytes, mp_bytes,
        "{algo} at {procs} procs: centers files are not byte-identical"
    );
}

/// One externally started `kcenter worker --listen` process (via the real
/// CLI binary), stopped through the wire so the `cargo run` wrapper exits
/// cleanly. Killed on drop if an assertion panics first.
struct TcpWorker {
    child: Child,
    addr: String,
}

impl TcpWorker {
    fn listen(store: &str) -> TcpWorker {
        let manifest_dir = env!("CARGO_MANIFEST_DIR");
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
        let mut child = Command::new(&cargo)
            .args([
                "run",
                "--release",
                "-p",
                "kcenter-cli",
                "--bin",
                "kcenter",
                "--",
                "worker",
                "--listen",
                "127.0.0.1:0",
                "--store",
                store,
            ])
            .env_remove("KCENTER_CACHE_DIR")
            .env_remove("KCENTER_EXEC_FAULT")
            .env_remove("KCENTER_TRACE")
            .current_dir(manifest_dir)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn kcenter worker --listen");
        let stdout = child.stdout.take().expect("worker stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("worker announce line");
        assert!(
            line.contains("listening on"),
            "unexpected announce line {line:?}"
        );
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("address in announce line")
            .to_string();
        TcpWorker { child, addr }
    }

    /// Exits the worker via a framed `shutdown process` request.
    fn stop(mut self) {
        let stream = TcpStream::connect(&self.addr).expect("dial worker for shutdown");
        let mut writer = stream.try_clone().expect("clone stream");
        let mut reader = BufReader::new(stream);
        write_frame(
            &mut writer,
            &["shutdown".to_string(), "process".to_string()],
        )
        .expect("send shutdown");
        let _ = read_frame(&mut reader);
        let status = self.child.wait().expect("reap worker");
        assert!(status.success(), "tcp worker exited with {status}");
    }
}

impl Drop for TcpWorker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The TCP leg of the contract: `--procs N --workers …` over independently
/// started `kcenter worker --listen` processes must write the same radius
/// line and the same centers bytes as the in-process engine at `--ell N`.
/// Shards reach the workers as `@store/…` references through a shared
/// `--cache-dir` store; the in-process reference runs with caching off so
/// its solution can never be served to (or from) the TCP run.
#[test]
fn tcp_workers_runs_are_bit_identical_to_in_process() {
    let data = temp_path("dataset-tcp.csv");
    let data_str = data.to_string_lossy().into_owned();
    run_kcenter(&[
        "generate",
        "--dataset",
        "power",
        "--n",
        "400",
        "--outliers",
        "4",
        "--seed",
        "4",
        "--output",
        &data_str,
    ]);

    for procs in [1usize, 4] {
        let store = temp_path(&format!("tcp-store-{procs}"));
        let _ = std::fs::remove_dir_all(&store);
        std::fs::create_dir_all(&store).unwrap();
        let store_str = store.to_string_lossy().into_owned();
        let in_centers = temp_path(&format!("centers-in-tcp-{procs}.csv"));
        let tcp_centers = temp_path(&format!("centers-tcp-{procs}.csv"));
        let in_centers_str = in_centers.to_string_lossy().into_owned();
        let tcp_centers_str = tcp_centers.to_string_lossy().into_owned();

        let workers: Vec<TcpWorker> = (0..procs).map(|_| TcpWorker::listen(&store_str)).collect();
        let addrs = workers
            .iter()
            .map(|w| w.addr.as_str())
            .collect::<Vec<_>>()
            .join(",");

        let common = [
            "--input", &data_str, "--k", "3", "--algo", "mr", "--mu", "2", "--seed", "7",
        ];
        let procs_str = procs.to_string();
        let mut in_args = vec!["cluster"];
        in_args.extend(common);
        in_args.extend([
            "--ell",
            &procs_str,
            "--cache-dir",
            "",
            "--output",
            &in_centers_str,
        ]);
        let in_out = run_kcenter(&in_args);

        let mut tcp_args = vec!["cluster"];
        tcp_args.extend(common);
        tcp_args.extend([
            "--procs",
            &procs_str,
            "--workers",
            &addrs,
            "--cache-dir",
            &store_str,
            "--output",
            &tcp_centers_str,
        ]);
        let tcp_out = run_kcenter(&tcp_args);

        assert_eq!(
            radius_line(&in_out),
            radius_line(&tcp_out),
            "tcp at {procs} procs: radius drifted across the transport"
        );
        let in_bytes = std::fs::read(&in_centers).unwrap();
        let tcp_bytes = std::fs::read(&tcp_centers).unwrap();
        assert!(!in_bytes.is_empty());
        assert_eq!(
            in_bytes, tcp_bytes,
            "tcp at {procs} procs: centers files are not byte-identical"
        );
        for worker in workers {
            worker.stop();
        }
    }
}

#[test]
fn multi_process_runs_are_bit_identical_to_in_process() {
    let data = temp_path("dataset.csv");
    let data_str = data.to_string_lossy().into_owned();
    let out = run_kcenter(&[
        "generate",
        "--dataset",
        "power",
        "--n",
        "400",
        "--outliers",
        "4",
        "--seed",
        "4",
        "--output",
        &data_str,
    ]);
    assert!(out.contains("wrote 404 points"), "generate drifted:\n{out}");

    for procs in [1usize, 4] {
        cross_check(&data_str, "mr", "3", "0", procs);
        cross_check(&data_str, "mr-outliers", "3", "4", procs);
    }
    // The randomized variant exercises the seeded random partitioner
    // across the boundary; one parallelism level suffices on top of the
    // chunked coverage above.
    cross_check(&data_str, "mr-randomized", "3", "4", 4);
}
