//! Cross-check: the multi-process executor (`kcenter cluster --procs N`)
//! must be **bit-identical** to the in-process MapReduce engine on the
//! same seeded dataset — the acceptance contract of the executor and the
//! suite behind the `exec-determinism` CI job.
//!
//! Each case runs the real `kcenter` binary twice — once in-process at
//! parallelism ℓ, once with `--procs` = ℓ real worker OS processes — and
//! compares (a) the written centers CSV **byte for byte** (the CSV writer
//! uses Rust's shortest round-trip `f64` formatting, so equal bytes ⇔
//! equal coordinate bits) and (b) the reported radius line, which the CLI
//! renders at 6 decimals — a sanity check on top of (a), not the
//! bit-level contract. Bit-exact *radius* equality is pinned at the
//! library layer by `crates/exec/tests/process_exec.rs`
//! (`to_bits()` comparisons against the in-process engines). Procs 1 and
//! 4 are both covered, for both MapReduce algorithms.

use std::path::PathBuf;
use std::process::Command;

fn run_kcenter(args: &[&str]) -> String {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(&cargo)
        .args([
            "run",
            "--release",
            "-p",
            "kcenter-cli",
            "--bin",
            "kcenter",
            "--",
        ])
        .args(args)
        // Determinism pins assume the persistent cache is off; an ambient
        // KCENTER_CACHE_DIR must not serve one run the other's solution.
        .env_remove("KCENTER_CACHE_DIR")
        .current_dir(manifest_dir)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn kcenter {args:?}: {e}"));
    assert!(
        output.status.success(),
        "kcenter {args:?} exited with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("kcenter-exec-determinism");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

fn radius_line(stdout: &str) -> String {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("radius = "))
        .unwrap_or_else(|| panic!("no radius line in:\n{stdout}"));
    // The line ends with a wall-clock field; everything before it is a
    // pure function of the input and must match exactly.
    line.split(", time =")
        .next()
        .expect("split yields at least one piece")
        .to_string()
}

/// One cross-check: in-process at `--ell procs` vs multi-process at
/// `--procs procs`, radius string and centers bytes must match exactly.
fn cross_check(data: &str, algo: &str, k: &str, z: &str, procs: usize) {
    let procs_str = procs.to_string();
    let in_centers = temp_path(&format!("centers-in-{algo}-{procs}.csv"));
    let mp_centers = temp_path(&format!("centers-mp-{algo}-{procs}.csv"));
    let in_centers_str = in_centers.to_string_lossy().into_owned();
    let mp_centers_str = mp_centers.to_string_lossy().into_owned();

    let common = |centers: &str| {
        vec![
            "cluster".to_string(),
            "--input".into(),
            data.to_string(),
            "--k".into(),
            k.to_string(),
            "--z".into(),
            z.to_string(),
            "--algo".into(),
            algo.to_string(),
            "--mu".into(),
            "2".into(),
            "--seed".into(),
            "7".into(),
            "--cache-dir".into(),
            String::new(),
            "--output".into(),
            centers.to_string(),
        ]
    };

    let mut in_args = common(&in_centers_str);
    in_args.extend(["--ell".to_string(), procs_str.clone()]);
    let in_out = run_kcenter(&in_args.iter().map(String::as_str).collect::<Vec<_>>());

    let mut mp_args = common(&mp_centers_str);
    mp_args.extend(["--procs".to_string(), procs_str.clone()]);
    let mp_out = run_kcenter(&mp_args.iter().map(String::as_str).collect::<Vec<_>>());

    assert_eq!(
        radius_line(&in_out),
        radius_line(&mp_out),
        "{algo} at {procs} procs: radius drifted across the process boundary"
    );
    let in_bytes = std::fs::read(&in_centers).unwrap();
    let mp_bytes = std::fs::read(&mp_centers).unwrap();
    assert!(!in_bytes.is_empty());
    assert_eq!(
        in_bytes, mp_bytes,
        "{algo} at {procs} procs: centers files are not byte-identical"
    );
}

#[test]
fn multi_process_runs_are_bit_identical_to_in_process() {
    let data = temp_path("dataset.csv");
    let data_str = data.to_string_lossy().into_owned();
    let out = run_kcenter(&[
        "generate",
        "--dataset",
        "power",
        "--n",
        "400",
        "--outliers",
        "4",
        "--seed",
        "4",
        "--output",
        &data_str,
    ]);
    assert!(out.contains("wrote 404 points"), "generate drifted:\n{out}");

    for procs in [1usize, 4] {
        cross_check(&data_str, "mr", "3", "0", procs);
        cross_check(&data_str, "mr-outliers", "3", "4", procs);
    }
    // The randomized variant exercises the seeded random partitioner
    // across the boundary; one parallelism level suffices on top of the
    // chunked coverage above.
    cross_check(&data_str, "mr-randomized", "3", "4", 4);
}
