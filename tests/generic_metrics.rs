//! The algorithms are generic over the metric space: run the full pipelines
//! on non-Euclidean metrics (angular distance on embeddings; arbitrary
//! finite metrics given as validated distance matrices over indices).

use kcenter::core::gmm::gmm_select;
use kcenter::metric::{CosineAngular, Precomputed};
use kcenter::prelude::*;

#[test]
fn mr_kcenter_on_angular_distance() {
    // Unit-norm-ish embedding vectors in 3 bands of direction.
    let points: Vec<Point> = (0..300)
        .map(|i| {
            let band = (i % 3) as f64;
            let jitter = ((i * 7) % 13) as f64 * 0.01;
            let angle = band * 1.0 + jitter; // radians
            Point::new(vec![angle.cos(), angle.sin()])
        })
        .collect();
    let result = mr_kcenter(
        &points,
        &CosineAngular,
        &MrKCenterConfig {
            k: 3,
            ell: 3,
            coreset: CoresetSpec::Multiplier { mu: 4 },
            seed: 2,
        },
    )
    .unwrap();
    // Bands are 1 radian apart with jitter ≤ 0.13: a correct 3-clustering
    // has angular radius ≪ half the band gap.
    assert!(
        result.clustering.radius < 0.2,
        "angular radius {} did not separate the bands",
        result.clustering.radius
    );
}

#[test]
fn pipelines_run_on_arbitrary_finite_metrics() {
    // A validated non-Euclidean metric: shortest-path distances on a cycle
    // of 24 nodes (doubling dimension 1).
    let n = 24usize;
    let mut matrix = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            let around = (i as i64 - j as i64).unsigned_abs() as usize % n;
            matrix[i * n + j] = around.min(n - around) as f64;
        }
    }
    let metric = Precomputed::new(n, matrix);
    metric.check_metric_axioms(1e-9).unwrap();

    let indices: Vec<usize> = (0..n).collect();

    // GMM on the cycle: k = 4 evenly spaced centers give radius 3.
    let gmm = gmm_select(&indices, &metric, 4, 0);
    assert!(gmm.radius <= 2.0 * 3.0, "cycle radius {}", gmm.radius);

    // Full MapReduce pipeline on index points.
    let result = mr_kcenter(
        &indices,
        &metric,
        &MrKCenterConfig {
            k: 4,
            ell: 2,
            coreset: CoresetSpec::Multiplier { mu: 2 },
            seed: 0,
        },
    )
    .unwrap();
    assert!(result.clustering.radius <= 6.0);

    // Outlier variant on the same metric.
    let outliers = mr_kcenter_outliers(
        &indices,
        &metric,
        &MrOutliersConfig::deterministic(4, 2, 2, CoresetSpec::Multiplier { mu: 2 }),
    )
    .unwrap();
    assert!(outliers.clustering.radius <= 6.0);
}

#[test]
fn streaming_on_arbitrary_finite_metrics() {
    // Two far-apart cliques plus two isolated nodes (the outliers), as an
    // explicit metric.
    let n = 18usize;
    let mut matrix = vec![0.0f64; n * n];
    let group = |i: usize| -> f64 {
        if i < 8 {
            0.0
        } else if i < 16 {
            100.0
        } else {
            10_000.0 + (i as f64) * 5_000.0
        }
    };
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let base = (group(i) - group(j)).abs();
                matrix[i * n + j] = base + 1.0; // intra-group distance 1
            }
        }
    }
    let metric = Precomputed::new(n, matrix.clone());
    metric.check_metric_axioms(1e-9).unwrap();

    let indices: Vec<usize> = (0..n).collect();
    let alg = CoresetOutliers::new(metric.clone(), 2, 2, 3 * 4, 0.5);
    let (out, _) = run_stream(alg, indices.iter().copied());
    let r = radius_with_outliers(&indices, &out.centers, 2, &metric);
    assert!(
        r <= 2.0,
        "streaming failed to separate cliques from isolates: r = {r}"
    );
}
