//! Trace-schema suite: drives the real `kcenter` binary over a real
//! 4-process fleet run with `--trace` and validates the written JSONL
//! stream against the normative `kcenter-trace/v1` schema
//! (docs/PROTOCOL.md §8) — every record parses, spans nest under their
//! parents, and the merged worker spans carry per-partition attribution.
//!
//! The same run is also the trace half of the determinism contract: the
//! traced run's results (radius line, centers bytes) must be identical
//! to an untraced run of the same seeded input, because all trace bytes
//! go to the trace file and none to stdout.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::Command;

use kcenter_obs::json::{parse, Json};

fn run_kcenter(args: &[&str]) -> String {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(&cargo)
        .args([
            "run",
            "--release",
            "-p",
            "kcenter-cli",
            "--bin",
            "kcenter",
            "--",
        ])
        .args(args)
        .env_remove("KCENTER_CACHE_DIR")
        // The flag, not the environment, must control tracing here.
        .env_remove(kcenter_obs::TRACE_ENV)
        .current_dir(manifest_dir)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn kcenter {args:?}: {e}"));
    assert!(
        output.status.success(),
        "kcenter {args:?} exited with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("kcenter-trace-schema");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

fn radius_line(stdout: &str) -> String {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("radius = "))
        .unwrap_or_else(|| panic!("no radius line in:\n{stdout}"));
    line.split(", time =")
        .next()
        .expect("split yields at least one piece")
        .to_string()
}

/// One parsed span record.
struct SpanRec {
    id: u64,
    parent: Option<u64>,
    name: String,
    worker: Option<u64>,
    start_us: u64,
}

fn spans_of(text: &str) -> Vec<SpanRec> {
    text.lines()
        .map(|line| parse(line).unwrap_or_else(|e| panic!("bad trace line {line:?}: {e}")))
        .filter(|rec| rec.get("type").and_then(Json::as_str) == Some("span"))
        .map(|rec| SpanRec {
            id: rec.get("id").and_then(Json::as_u64).expect("span id"),
            parent: rec.get("parent").and_then(Json::as_u64),
            name: rec
                .get("name")
                .and_then(Json::as_str)
                .expect("span name")
                .to_string(),
            worker: rec.get("worker").and_then(Json::as_u64),
            start_us: rec
                .get("start_us")
                .and_then(Json::as_u64)
                .expect("span start_us"),
        })
        .collect()
}

/// The end-to-end schema pin: a `--procs 4 --trace` fleet run yields one
/// merged timeline — round spans nested under the CLI span, one
/// worker-attributed `exec.worker.coreset` span per partition parented
/// to round 1 — and enabling the trace changes no result byte.
#[test]
fn procs4_trace_is_schema_valid_and_result_invariant() {
    let data = temp_path("dataset.csv");
    let data_str = data.to_string_lossy().into_owned();
    run_kcenter(&[
        "generate",
        "--dataset",
        "power",
        "--n",
        "400",
        "--outliers",
        "4",
        "--seed",
        "4",
        "--output",
        &data_str,
    ]);

    let trace = temp_path("fleet.jsonl");
    let trace_str = trace.to_string_lossy().into_owned();
    let plain_centers = temp_path("centers-plain.csv");
    let traced_centers = temp_path("centers-traced.csv");
    let plain_centers_str = plain_centers.to_string_lossy().into_owned();
    let traced_centers_str = traced_centers.to_string_lossy().into_owned();

    let common = [
        "cluster",
        "--input",
        &data_str,
        "--k",
        "3",
        "--z",
        "4",
        "--algo",
        "mr-outliers",
        "--procs",
        "4",
        "--mu",
        "2",
        "--seed",
        "7",
        "--cache-dir",
        "",
    ];
    let mut plain_args = common.to_vec();
    plain_args.extend(["--output", &plain_centers_str]);
    let plain_out = run_kcenter(&plain_args);

    let mut traced_args = common.to_vec();
    traced_args.extend(["--output", &traced_centers_str, "--trace", &trace_str]);
    let traced_out = run_kcenter(&traced_args);

    // Tracing must not move a single result byte.
    assert_eq!(
        radius_line(&plain_out),
        radius_line(&traced_out),
        "tracing changed the reported radius"
    );
    let plain_bytes = std::fs::read(&plain_centers).unwrap();
    let traced_bytes = std::fs::read(&traced_centers).unwrap();
    assert!(!plain_bytes.is_empty());
    assert_eq!(
        plain_bytes, traced_bytes,
        "tracing changed the centers bytes"
    );

    // Schema: the first record is the meta line announcing the version…
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let meta = parse(text.lines().next().expect("meta record")).expect("meta parses");
    assert_eq!(meta.get("type").and_then(Json::as_str), Some("meta"));
    assert_eq!(
        meta.get("schema").and_then(Json::as_str),
        Some(kcenter_obs::TRACE_SCHEMA)
    );
    assert!(meta.get("pid").and_then(Json::as_u64).is_some());

    // …and every following line parses into a span/event record.
    for line in text.lines().skip(1) {
        let rec = parse(line).unwrap_or_else(|e| panic!("bad trace line {line:?}: {e}"));
        let ty = rec.get("type").and_then(Json::as_str);
        assert!(
            ty == Some("span") || ty == Some("event"),
            "unknown record type in {line:?}"
        );
    }

    let spans = spans_of(&text);
    let by_id: HashMap<u64, &SpanRec> = spans.iter().map(|s| (s.id, s)).collect();
    let find = |name: &str| -> &SpanRec {
        spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no {name} span in trace"))
    };

    // The run timeline: round spans nest under the CLI root span.
    let root = find("cli.cluster");
    let round1 = find("exec.round1");
    let round2 = find("exec.round2");
    assert_eq!(root.parent, None, "cli.cluster must be the root span");
    assert_eq!(round1.parent, Some(root.id));
    assert_eq!(round2.parent, Some(root.id));

    // Merged worker spans: one coreset job per partition, attributed to
    // its worker and parented to round 1, started within it.
    let coreset: Vec<&SpanRec> = spans
        .iter()
        .filter(|s| s.name == "exec.worker.coreset")
        .collect();
    assert_eq!(coreset.len(), 4, "one coreset span per partition");
    let mut workers: Vec<u64> = coreset
        .iter()
        .map(|s| s.worker.expect("worker id"))
        .collect();
    workers.sort_unstable();
    assert_eq!(workers, vec![0, 1, 2, 3], "partition attribution");
    for span in &coreset {
        assert_eq!(span.parent, Some(round1.id), "coreset parents to round 1");
        assert!(span.start_us >= round1.start_us, "child starts in parent");
    }
    // The reduction tree ran on the workers too (ell - 1 merges),
    // parented to the same round.
    let merges = spans
        .iter()
        .filter(|s| s.name == "exec.worker.merge")
        .count();
    assert_eq!(merges, 3, "ell - 1 merge jobs for ell = 4");

    // Every parent link resolves within the file.
    for span in &spans {
        if let Some(parent) = span.parent {
            let parent = by_id
                .get(&parent)
                .unwrap_or_else(|| panic!("{} has dangling parent {parent}", span.name));
            assert!(
                span.start_us >= parent.start_us,
                "{} starts before its parent {}",
                span.name,
                parent.name
            );
        }
    }
}

/// `--report json` renders the run report plus the metrics-registry
/// snapshot as one parsable JSON object, with the round histograms the
/// spans fed visibly nonzero.
#[test]
fn report_json_carries_the_metrics_snapshot() {
    let data = temp_path("dataset-report.csv");
    let data_str = data.to_string_lossy().into_owned();
    run_kcenter(&[
        "generate",
        "--dataset",
        "power",
        "--n",
        "200",
        "--seed",
        "5",
        "--output",
        &data_str,
    ]);
    let out = run_kcenter(&[
        "cluster",
        "--input",
        &data_str,
        "--k",
        "3",
        "--algo",
        "mr",
        "--procs",
        "2",
        "--cache-dir",
        "",
        "--report",
        "json",
    ]);
    let line = out
        .lines()
        .find(|l| l.starts_with('{'))
        .unwrap_or_else(|| panic!("no JSON report line in:\n{out}"));
    let report = parse(line).unwrap_or_else(|e| panic!("report does not parse: {e}\n{line}"));
    assert_eq!(
        report.get("schema").and_then(Json::as_str),
        Some("kcenter-report/v1")
    );
    assert_eq!(report.get("algo").and_then(Json::as_str), Some("mr"));
    assert!(report.get("radius").and_then(Json::as_f64).is_some());
    let metrics = report.get("metrics").expect("metrics snapshot");
    assert_eq!(
        metrics.get("schema").and_then(Json::as_str),
        Some("kcenter-metrics/v1")
    );
    let entries = metrics
        .get("metrics")
        .and_then(Json::as_array)
        .expect("metrics array");
    let find = |name: &str| -> &Json {
        entries
            .iter()
            .find(|m| m.get("name").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| panic!("no {name} metric in report"))
    };
    // The fleet ran: the round span histograms observed one round each,
    // and the job counters saw one coreset job per partition.
    for histogram in ["exec.round1.micros", "exec.round2.micros"] {
        let count = find(histogram)
            .get("count")
            .and_then(Json::as_u64)
            .expect("histogram count");
        assert_eq!(count, 1, "{histogram} must observe exactly one round");
    }
    let jobs = find("exec.jobs.coreset")
        .get("value")
        .and_then(Json::as_u64)
        .expect("counter value");
    assert_eq!(jobs, 2, "one coreset job per partition at --procs 2");
}
