//! Outlier detection on noisy sensor readings.
//!
//! Scenario: a fleet of sensors reports 7-dimensional measurements; a few
//! report garbage (stuck registers, transmission noise). k-center with
//! outliers recovers the operating regimes *and* pinpoints the bad
//! readings, using the paper's randomized MapReduce algorithm.
//!
//! Run with:
//! ```text
//! cargo run --release --example outlier_detection
//! ```

use kcenter::core::solution::outlier_indices;
use kcenter::data::{inject_outliers, power_like, shuffled};
use kcenter::prelude::*;

fn main() {
    // 40k clean readings from ~120 operating regimes + 60 corrupted ones.
    let mut points = power_like(40_000, 99);
    let z = 60;
    let report = inject_outliers(&mut points, z, 7);
    println!(
        "injected {z} corrupted readings at 100 × r_MEB = {:.1} from the data center",
        100.0 * report.meb_radius
    );
    let truth: std::collections::BTreeSet<usize> = report.outlier_indices.iter().copied().collect();

    // Shuffle (sensors report in arbitrary order), remembering where the
    // injected outliers land.
    let order: Vec<usize> = shuffled(&(0..points.len()).collect::<Vec<_>>(), 3);
    let shuffled_points: Vec<Point> = order.iter().map(|&i| points[i].clone()).collect();
    let truth_shuffled: std::collections::BTreeSet<usize> = order
        .iter()
        .enumerate()
        .filter(|(_, &orig)| truth.contains(&orig))
        .map(|(pos, _)| pos)
        .collect();

    // Randomized MapReduce: coresets of µ(k + 6z/ℓ) per partition.
    let k = 20;
    let config = MrOutliersConfig::randomized(k, z, 8, CoresetSpec::Multiplier { mu: 4 });
    let result =
        mr_kcenter_outliers(&shuffled_points, &Euclidean, &config).expect("valid configuration");

    println!(
        "clustered into {} regimes, radius (excluding {z} outliers) = {:.3}",
        result.clustering.k(),
        result.clustering.radius
    );
    println!(
        "coreset union: {} points (local memory {} pts, 2 rounds)",
        result.union_size,
        result.memory.local_memory()
    );

    // The z points farthest from the centers are the flagged outliers.
    let flagged = outlier_indices(&shuffled_points, &result.clustering.centers, z, &Euclidean);
    let hits = flagged
        .iter()
        .filter(|i| truth_shuffled.contains(i))
        .count();
    println!("flagged {z} readings; {hits}/{z} are the injected corruptions");

    // A corruption can escape the flagged set only by being *absorbed as a
    // center*: once the data is covered, OutliersCluster spends leftover
    // center budget on the heaviest uncovered points — which may be
    // corrupted readings (at distance 0 from themselves). At most k of the
    // z corruptions can be absorbed this way.
    let absorbed = result
        .clustering
        .centers
        .iter()
        .filter(|c| {
            shuffled_points
                .iter()
                .enumerate()
                .any(|(i, p)| truth_shuffled.contains(&i) && p == *c)
        })
        .count();
    println!("({absorbed} corruptions were absorbed as leftover centers)");
    assert!(
        hits + absorbed >= z,
        "every corruption must be flagged or absorbed: {hits} + {absorbed} < {z}"
    );
    println!("✔ all corrupted readings accounted for");
}
