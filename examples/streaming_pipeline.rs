//! A live streaming pipeline: cluster a social-media-style event feed with
//! outliers in one pass, while the producer is still emitting.
//!
//! The paper motivates 1-pass algorithms with real-time feeds (it cites
//! Twitter's 143,199 tweets/s peak); here a producer thread emits embedded
//! events through a bounded channel and `CoresetOutliers` consumes them as
//! they arrive, never holding more than `τ + 1` points.
//!
//! Run with:
//! ```text
//! cargo run --release --example streaming_pipeline
//! ```

use kcenter::data::{inject_outliers, shuffled, wiki_like};
use kcenter::prelude::*;
use kcenter::stream::ChannelSource;

fn main() {
    // Pre-generate the "feed": 30k embedded events in 50 dimensions with a
    // handful of spam/garbage events far from everything.
    let mut events = wiki_like(30_000, 5);
    let z = 25;
    inject_outliers(&mut events, z, 11);
    let events = shuffled(&events, 4);
    let total = events.len();
    let replay = events.clone(); // kept only to evaluate the result

    // Producer thread pushes events through a bounded channel (capacity 256
    // ≈ a network buffer); the consumer clusters on the fly.
    let feed = ChannelSource::spawn(256, move |tx| {
        tx.feed(events); // stops early if the consumer hangs up
    });

    let k = 20;
    let tau = 4 * (k + z);
    let alg = CoresetOutliers::new(Euclidean, k, z, tau, 0.25);
    let (out, report) = run_stream(alg, feed.iter());
    assert!(feed.join(), "the consumer drained the whole feed");

    println!("consumed {total} events in one pass");
    println!(
        "  throughput      : {:.0}k events/s",
        report.throughput().unwrap_or(f64::INFINITY) / 1_000.0
    );
    println!(
        "  working memory  : {} points (budget τ = {tau})",
        report.peak_memory_items
    );
    let measured = radius_with_outliers(&replay, &out.centers, z, &Euclidean);
    println!(
        "  topics found    : {} centers, radius (excl. {z} spam events) = {:.3}",
        out.centers.len(),
        measured
    );
    println!(
        "  spam excluded   : uncovered coreset weight {} ≤ z = {z}",
        out.uncovered_weight
    );
    assert!(report.peak_memory_items <= tau + 1);
    assert!(out.uncovered_weight <= z as u64);
    println!("✔ one-pass clustering kept within its memory budget");
}
