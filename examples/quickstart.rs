//! Quickstart: cluster a synthetic dataset three ways — sequential GMM,
//! 2-round MapReduce, and 1-pass streaming — and compare the radii.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use kcenter::core::gmm::gmm_select;
use kcenter::data::{higgs_like, shuffled};
use kcenter::prelude::*;

fn main() {
    let n = 20_000;
    let k = 20;
    let points = shuffled(&higgs_like(n, 7), 1);
    println!("dataset: {n} points, 7 dimensions, k = {k}\n");

    // 1. Sequential GMM — the 2-approximation everything builds on.
    let gmm = gmm_select(&points, &Euclidean, k, 0);
    println!(
        "GMM (sequential, 2-approx)        radius = {:.4}",
        gmm.radius
    );

    // 2. MapReduce with composable coresets — (2+ε)-approx, 2 rounds.
    for mu in [1usize, 4] {
        let result = mr_kcenter(
            &points,
            &Euclidean,
            &MrKCenterConfig {
                k,
                ell: 8,
                coreset: CoresetSpec::Multiplier { mu },
                seed: 1,
            },
        )
        .expect("valid configuration");
        println!(
            "MapReduce ℓ=8, µ={mu} (coreset {:>4})  radius = {:.4}   [local memory: {} pts]",
            result.union_size,
            result.clustering.radius,
            result.memory.local_memory(),
        );
    }

    // 3. Streaming with a doubling coreset — one pass, tiny memory.
    let alg = CoresetStream::new(Euclidean, k, 8 * k);
    let (out, report) = run_stream(alg, points.iter().cloned());
    let streaming_radius = radius(&points, &out.centers, &Euclidean);
    println!(
        "Streaming τ=8k (1 pass)           radius = {:.4}   [peak memory: {} pts, {:.0}k pts/s]",
        streaming_radius,
        report.peak_memory_items,
        report.throughput().unwrap_or(f64::INFINITY) / 1_000.0,
    );

    println!("\nAll three should be within a small factor of each other;");
    println!("the MapReduce radius approaches the GMM radius as µ grows.");
}
