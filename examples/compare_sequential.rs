//! The paper's Fig. 8 story in miniature: the coreset-based sequential
//! algorithm matches the quality of Charikar et al. (2001) at a fraction of
//! the running time.
//!
//! Run with:
//! ```text
//! cargo run --release --example compare_sequential
//! ```

use std::time::Instant;

use kcenter::baselines::charikar_kcenter_outliers;
use kcenter::data::{higgs_like, inject_outliers, shuffled};
use kcenter::prelude::*;

fn main() {
    // A 3,000-point sample (CHARIKARETAL is quadratic — this is exactly why
    // the paper samples) with 50 planted outliers.
    let mut points = higgs_like(3_000, 21);
    let z = 50;
    inject_outliers(&mut points, z, 22);
    let points = shuffled(&points, 23);
    let k = 20;

    println!("n = {}, k = {k}, z = {z}\n", points.len());
    println!("{:<28} {:>10} {:>12}", "algorithm", "radius", "time");

    let start = Instant::now();
    let charikar = charikar_kcenter_outliers(&points, &Euclidean, k, z).expect("valid input");
    println!(
        "{:<28} {:>10.4} {:>9.2?}",
        "CharikarEtAl (3-approx)",
        charikar.clustering.radius,
        start.elapsed()
    );

    for mu in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let result = sequential_kcenter_outliers(
            &points,
            &Euclidean,
            &SequentialOutliersConfig::new(k, z, mu),
        )
        .expect("valid input");
        let label = if mu == 1 {
            "MalkomesEtAl (µ=1)".to_string()
        } else {
            format!("Ours (µ={mu})")
        };
        println!(
            "{:<28} {:>10.4} {:>9.2?}   [coreset {}]",
            label,
            result.clustering.radius,
            start.elapsed(),
            result.coreset_size
        );
    }

    println!("\nExpected shape (paper Fig. 8): the coreset algorithms run ~10×");
    println!("faster than CharikarEtAl; µ=1 is fast but inaccurate, µ≥2 matches");
    println!("CharikarEtAl's radius.");
}
